#include "workload/load_model.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.h"

namespace p2plb::workload {

LoadModel LoadModel::gaussian(double mean_total, double stddev_total) {
  P2PLB_REQUIRE(mean_total > 0.0);
  P2PLB_REQUIRE(stddev_total >= 0.0);
  LoadModel m;
  m.distribution = LoadDistribution::kGaussian;
  m.mean_total = mean_total;
  m.stddev_total = stddev_total;
  return m;
}

LoadModel LoadModel::pareto(double mean_total, double alpha) {
  P2PLB_REQUIRE(mean_total > 0.0);
  P2PLB_REQUIRE_MSG(alpha > 1.0, "Pareto needs alpha > 1 for a finite mean");
  LoadModel m;
  m.distribution = LoadDistribution::kPareto;
  m.mean_total = mean_total;
  m.pareto_alpha = alpha;
  return m;
}

std::string LoadModel::name() const {
  switch (distribution) {
    case LoadDistribution::kGaussian:
      return "gaussian";
    case LoadDistribution::kPareto:
      return "pareto";
  }
  return "unknown";
}

double sample_load(const LoadModel& model, double f, Rng& rng) {
  P2PLB_REQUIRE_MSG(f > 0.0 && f <= 1.0,
                    "arc fraction must lie in (0, 1]");
  switch (model.distribution) {
    case LoadDistribution::kGaussian: {
      const double draw =
          rng.normal(model.mean_total * f, model.stddev_total * std::sqrt(f));
      return std::max(0.0, draw);
    }
    case LoadDistribution::kPareto: {
      // Pareto(alpha, xm) has mean alpha*xm/(alpha-1); solve for xm so the
      // mean equals mean_total * f.
      const double mean = model.mean_total * f;
      const double xm = mean * (model.pareto_alpha - 1.0) / model.pareto_alpha;
      return rng.pareto(model.pareto_alpha, xm);
    }
  }
  throw PreconditionError("unknown load distribution");
}

void assign_loads(chord::Ring& ring, const LoadModel& model, Rng& rng) {
  // Snapshot ids first: set_load does not reorder, but be explicit about
  // iterating a stable sequence.
  const std::vector<chord::Key> ids = ring.server_ids();
  for (const chord::Key id : ids)
    ring.set_load(id, sample_load(model, ring.arc_fraction(id), rng));
}

}  // namespace p2plb::workload
