#include "workload/objects.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/error.h"

namespace p2plb::workload {

ZipfSampler::ZipfSampler(std::size_t n, double exponent) {
  P2PLB_REQUIRE(n >= 1);
  P2PLB_REQUIRE(exponent >= 0.0);
  cdf_.resize(n);
  double running = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    running += 1.0 / std::pow(static_cast<double>(k + 1), exponent);
    cdf_[k] = running;
  }
  // Normalize so the last entry is exactly 1.
  const double total = cdf_.back();
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.uniform01();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfSampler::pmf(std::size_t k) const {
  P2PLB_REQUIRE(k < cdf_.size());
  return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

std::vector<StoredObject> generate_objects(const ObjectWorkloadParams& params,
                                           Rng& rng) {
  P2PLB_REQUIRE(params.object_count >= 1);
  P2PLB_REQUIRE(params.total_load > 0.0);
  const ZipfSampler zipf(params.object_count, params.zipf_exponent);
  std::vector<StoredObject> catalog(params.object_count);
  // Object i carries the mass of Zipf rank i (the catalog is the
  // popularity distribution itself); keys are independent uniform
  // hashes, so the hot objects land at random ring positions.
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    catalog[i].key = static_cast<chord::Key>(rng() >> 32);
    catalog[i].load = params.total_load * zipf.pmf(i);
  }
  return catalog;
}

std::size_t assign_object_loads(chord::Ring& ring,
                                const std::vector<StoredObject>& catalog) {
  P2PLB_REQUIRE_MSG(ring.virtual_server_count() > 0,
                    "cannot place objects on an empty ring");
  // Accumulate per-server sums, then set loads once (set_load validates).
  std::unordered_map<chord::Key, double> sums;
  for (const StoredObject& obj : catalog)
    sums[ring.successor(obj.key).id] += obj.load;
  for (const chord::Key id : ring.server_ids()) {
    const auto it = sums.find(id);
    ring.set_load(id, it == sums.end() ? 0.0 : it->second);
  }
  return catalog.size();
}

}  // namespace p2plb::workload
