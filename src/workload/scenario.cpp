#include "workload/scenario.h"

#include <cmath>

#include "common/error.h"

namespace p2plb::workload {

chord::Ring build_ring(std::size_t node_count, std::size_t servers_per_node,
                       const CapacityProfile& capacities, Rng& rng,
                       std::span<const std::uint32_t> attachments) {
  P2PLB_REQUIRE(node_count >= 1);
  P2PLB_REQUIRE(servers_per_node >= 1);
  P2PLB_REQUIRE_MSG(attachments.empty() || attachments.size() == node_count,
                    "need one attachment vertex per node");
  chord::Ring ring;
  for (std::size_t i = 0; i < node_count; ++i) {
    const std::uint32_t attach =
        attachments.empty() ? chord::Node::kNoAttachment : attachments[i];
    const chord::NodeIndex node =
        ring.add_node(capacities.sample(rng), attach);
    for (std::size_t v = 0; v < servers_per_node; ++v)
      (void)ring.add_random_virtual_server(node, rng);
  }
  return ring;
}

LoadModel scaled_load_model(const chord::Ring& ring,
                            LoadDistribution distribution, double utilization,
                            double cv, double pareto_alpha) {
  P2PLB_REQUIRE(utilization > 0.0);
  P2PLB_REQUIRE(cv >= 0.0);
  const double mean_total = utilization * ring.total_capacity();
  P2PLB_REQUIRE_MSG(mean_total > 0.0, "ring has no capacity");
  if (distribution == LoadDistribution::kPareto)
    return LoadModel::pareto(mean_total, pareto_alpha);
  P2PLB_REQUIRE_MSG(ring.virtual_server_count() > 0,
                    "ring has no virtual servers");
  const double stddev_total =
      cv * mean_total /
      std::sqrt(static_cast<double>(ring.virtual_server_count()));
  return LoadModel::gaussian(mean_total, stddev_total);
}

}  // namespace p2plb::workload
