// Virtual-server load models (Section 5.1).
//
// Let f be the fraction of the identifier space a virtual server owns
// (for random ids this is approximately exponentially distributed -- here
// we use each VS's *actual* arc fraction, which is even more faithful),
// and let mu / sigma be the mean and standard deviation of the *total*
// system load.  The paper's two models:
//
//   * Gaussian: load ~ N(mu * f, sigma * sqrt(f)), the limit of many
//     small independent objects; negative draws clamp to 0.
//   * Pareto:   load ~ Pareto(alpha = 1.5) with mean mu * f -- heavy
//     tailed, infinite variance.
#pragma once

#include <string>

#include "common/rng.h"
#include "chord/ring.h"

namespace p2plb::workload {

/// Which of the paper's load distributions to draw from.
enum class LoadDistribution : int { kGaussian, kPareto };

/// Parameters shared by the load models.
struct LoadModel {
  LoadDistribution distribution = LoadDistribution::kGaussian;
  /// Mean of the total system load.
  double mean_total = 1.0e6;
  /// Standard deviation of the total system load (Gaussian only).
  double stddev_total = 2.5e5;
  /// Pareto shape parameter (Pareto only; must be > 1 for a finite mean).
  double pareto_alpha = 1.5;

  [[nodiscard]] static LoadModel gaussian(double mean_total,
                                          double stddev_total);
  [[nodiscard]] static LoadModel pareto(double mean_total,
                                        double alpha = 1.5);
  [[nodiscard]] std::string name() const;
};

/// Draw one virtual-server load for an arc covering fraction `f` of the
/// identifier space (0 < f <= 1).
[[nodiscard]] double sample_load(const LoadModel& model, double f, Rng& rng);

/// Assign a fresh load to every virtual server in the ring according to
/// its actual arc fraction.
void assign_loads(chord::Ring& ring, const LoadModel& model, Rng& rng);

}  // namespace p2plb::workload
