#include "workload/churn.h"

#include <algorithm>

#include "common/error.h"

namespace p2plb::workload {

double sample_session_length(const ChurnParams& params, Rng& rng) {
  P2PLB_REQUIRE(params.session_mean > 0.0);
  switch (params.session_model) {
    case SessionModel::kExponential:
      return rng.exponential(params.session_mean);
    case SessionModel::kPareto: {
      P2PLB_REQUIRE_MSG(params.pareto_alpha > 1.0,
                        "Pareto sessions need alpha > 1 for a finite mean");
      const double xm = params.session_mean *
                        (params.pareto_alpha - 1.0) / params.pareto_alpha;
      return rng.pareto(params.pareto_alpha, xm);
    }
  }
  throw PreconditionError("unknown session model");
}

std::vector<ChurnEvent> generate_churn_schedule(const ChurnParams& params,
                                                sim::Time horizon, Rng& rng) {
  P2PLB_REQUIRE(params.join_interarrival_mean > 0.0);
  P2PLB_REQUIRE(horizon > 0.0);
  std::vector<ChurnEvent> events;
  sim::Time t = 0.0;
  std::uint64_t session = 0;
  for (;;) {
    t += rng.exponential(params.join_interarrival_mean);
    if (t >= horizon) break;
    events.push_back({t, ChurnEvent::Kind::kJoin, session});
    const sim::Time leave_at = t + sample_session_length(params, rng);
    if (leave_at < horizon)
      events.push_back({leave_at, ChurnEvent::Kind::kLeave, session});
    ++session;
  }
  std::sort(events.begin(), events.end(),
            [](const ChurnEvent& a, const ChurnEvent& b) {
              if (a.at != b.at) return a.at < b.at;
              return a.session < b.session;
            });
  return events;
}

double steady_state_population(const ChurnParams& params) {
  P2PLB_REQUIRE(params.join_interarrival_mean > 0.0);
  return params.session_mean / params.join_interarrival_mean;
}

}  // namespace p2plb::workload
