#include "workload/capacity.h"

#include <algorithm>
#include <numeric>

#include "common/error.h"

namespace p2plb::workload {

CapacityProfile::CapacityProfile(std::vector<double> levels,
                                 std::vector<double> weights)
    : levels_(std::move(levels)), weights_(std::move(weights)) {
  P2PLB_REQUIRE(!levels_.empty());
  P2PLB_REQUIRE(levels_.size() == weights_.size());
  double weight_sum = 0.0;
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    P2PLB_REQUIRE_MSG(levels_[i] > 0.0, "capacities must be positive");
    P2PLB_REQUIRE_MSG(weights_[i] >= 0.0, "weights must be non-negative");
    weight_sum += weights_[i];
  }
  P2PLB_REQUIRE_MSG(weight_sum > 0.0, "at least one weight must be positive");
  for (std::size_t i = 0; i < levels_.size(); ++i)
    mean_ += levels_[i] * weights_[i] / weight_sum;
}

CapacityProfile CapacityProfile::gnutella_like() {
  return CapacityProfile({1.0, 10.0, 100.0, 1000.0, 10000.0},
                         {0.20, 0.45, 0.30, 0.049, 0.001});
}

CapacityProfile CapacityProfile::uniform(double capacity) {
  return CapacityProfile({capacity}, {1.0});
}

double CapacityProfile::sample(Rng& rng) const {
  return levels_[rng.weighted(weights_)];
}

std::size_t CapacityProfile::level_index(double capacity) const {
  const auto it = std::find(levels_.begin(), levels_.end(), capacity);
  P2PLB_REQUIRE_MSG(it != levels_.end(),
                    "capacity does not match any profile level");
  return static_cast<std::size_t>(it - levels_.begin());
}

}  // namespace p2plb::workload
