// Scenario assembly helpers: build the paper's experiment configurations
// (N nodes x V virtual servers, a capacity profile, a load model, and
// optionally attachment to a physical topology) in one call.
#pragma once

#include <span>

#include "chord/ring.h"
#include "common/rng.h"
#include "workload/capacity.h"
#include "workload/load_model.h"

namespace p2plb::workload {

/// Build a Chord ring with `node_count` physical nodes, each hosting
/// `servers_per_node` virtual servers at uniformly random ids, with
/// capacities drawn from `capacities`.
///
/// If `attachments` is non-empty it must have one topology vertex per
/// node (node i attaches to attachments[i]); otherwise nodes carry no
/// attachment and the scenario is topology-free.
[[nodiscard]] chord::Ring build_ring(
    std::size_t node_count, std::size_t servers_per_node,
    const CapacityProfile& capacities, Rng& rng,
    std::span<const std::uint32_t> attachments = {});

/// A load model whose mean total load is `utilization` times the ring's
/// total capacity.
///
/// For the Gaussian model, `cv` is the coefficient of variation of a
/// mean-sized virtual server's load: a VS owning the average fraction
/// f = 1/V draws from N(m, cv * m) where m = mean_total / V.  (The
/// paper parameterizes by the total-load stddev sigma; sigma relates to
/// cv as sigma = cv * mean_total / sqrt(V).)  cv around 1 gives visibly
/// skewed per-node loads while keeping negative-draw clamping mild.
/// Ignored for Pareto.
[[nodiscard]] LoadModel scaled_load_model(const chord::Ring& ring,
                                          LoadDistribution distribution,
                                          double utilization = 0.25,
                                          double cv = 1.0,
                                          double pareto_alpha = 1.5);

}  // namespace p2plb::workload
