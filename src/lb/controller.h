// Multi-round balancing orchestration.
//
// The paper evaluates a single sweep, but a deployed balancer runs
// periodically (loads drift, epsilon = 0 leaves residue, Pareto tails
// leave unassignable candidates).  The controller repeats balancing
// rounds until the system is stable -- no heavy nodes, or no further
// progress -- and records a per-round time series for analysis.
#pragma once

#include <vector>

#include "lb/balancer.h"

namespace p2plb::lb {

/// Controller limits.
struct ControllerConfig {
  BalancerConfig balancer;
  /// Hard cap on rounds.
  std::uint32_t max_rounds = 8;
  /// Stop when the heavy count after a round is <= this.
  std::size_t target_heavy_count = 0;
};

/// One round's footprint in the time series.
struct RoundStats {
  std::size_t heavy_before = 0;
  std::size_t heavy_after = 0;
  std::size_t transfers = 0;
  double moved_load = 0.0;
  std::size_t unassigned = 0;
  std::uint64_t messages = 0;
};

/// Outcome of a controller run.
struct ControllerResult {
  std::vector<RoundStats> rounds;
  /// True iff the final round reached target_heavy_count.
  bool converged = false;

  [[nodiscard]] double total_moved() const {
    double t = 0.0;
    for (const auto& r : rounds) t += r.moved_load;
    return t;
  }
  [[nodiscard]] std::size_t total_transfers() const {
    std::size_t t = 0;
    for (const auto& r : rounds) t += r.transfers;
    return t;
  }
};

/// Run balancing rounds until convergence, stagnation (a round performs
/// no transfers), or the round cap.  `node_keys` as in run_balance_round.
[[nodiscard]] ControllerResult balance_until_stable(
    chord::Ring& ring, const ControllerConfig& config, Rng& rng,
    std::span<const chord::Key> node_keys = {});

}  // namespace p2plb::lb
