// Multi-round balancing orchestration.
//
// The paper evaluates a single sweep, but a deployed balancer runs
// periodically (loads drift, epsilon = 0 leaves residue, Pareto tails
// leave unassignable candidates).  The controller repeats balancing
// rounds until the system is stable -- no heavy nodes, or no further
// progress -- and records a per-round time series for analysis.
#pragma once

#include <array>
#include <vector>

#include "lb/balancer.h"
#include "obs/sampler.h"
#include "sim/network.h"

namespace p2plb::lb {

/// Controller limits.
struct ControllerConfig {
  BalancerConfig balancer;
  /// Hard cap on rounds.
  std::uint32_t max_rounds = 8;
  /// Stop when the heavy count after a round is <= this.
  std::size_t target_heavy_count = 0;
};

/// One round's footprint in the time series.
struct RoundStats {
  std::size_t heavy_before = 0;
  std::size_t heavy_after = 0;
  std::size_t transfers = 0;
  double moved_load = 0.0;
  std::size_t unassigned = 0;
  std::uint64_t messages = 0;
  /// Simulated round duration (0 under the synchronous path).
  double completion_time = 0.0;
  /// Per-phase traffic and timing (see BalanceReport::phases).
  std::array<PhaseMetrics, kPhaseCount> phases{};
};

/// Outcome of a controller run.
struct ControllerResult {
  std::vector<RoundStats> rounds;
  /// True iff the final round reached target_heavy_count.
  bool converged = false;

  [[nodiscard]] double total_moved() const {
    double t = 0.0;
    for (const auto& r : rounds) t += r.moved_load;
    return t;
  }
  [[nodiscard]] std::size_t total_transfers() const {
    std::size_t t = 0;
    for (const auto& r : rounds) t += r.transfers;
    return t;
  }
};

/// Run balancing rounds until convergence, stagnation (a round performs
/// no transfers), or the round cap.  `node_keys` as in run_balance_round.
[[nodiscard]] ControllerResult balance_until_stable(
    chord::Ring& ring, const ControllerConfig& config, Rng& rng,
    std::span<const chord::Key> node_keys = {});

/// Timed variant: each round is a lb::ProtocolRound on the caller's
/// network, run back-to-back on its engine (a round starts when the
/// previous one's last transfer lands).  Decisions per round are the same
/// as the synchronous variant's; RoundStats additionally carries real
/// completion times and per-phase metrics.  Drains the engine.
///
/// When `sampler` is given, its periodic chain is (re-)armed before every
/// round so it keeps recording across the per-round engine drains (see
/// obs::Sampler's idle-stop contract).  A null or disabled sampler leaves
/// the event schedule untouched.
[[nodiscard]] ControllerResult balance_until_stable(
    sim::Network& net, chord::Ring& ring, const ControllerConfig& config,
    Rng& rng, std::span<const chord::Key> node_keys = {},
    obs::Sampler* sampler = nullptr);

}  // namespace p2plb::lb
