#include "lb/continuous.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace p2plb::lb {

ContinuousLbi::ContinuousLbi(sim::Engine& engine, const chord::Ring& ring,
                             const ktree::MaintenanceProtocol& tree,
                             sim::Time interval, ktree::VsLatencyFn latency,
                             obs::MetricsRegistry* metrics)
    : engine_(engine),
      ring_(ring),
      tree_(tree),
      interval_(interval),
      latency_(std::move(latency)),
      metrics_(metrics) {
  P2PLB_REQUIRE(interval_ > 0.0);
  P2PLB_REQUIRE(latency_ != nullptr);
}

void ContinuousLbi::start() {
  engine_.every(interval_, [this] {
    refresh_all();
    return true;  // runs for the lifetime of the simulation
  });
}

Lbi ContinuousLbi::local_contribution(const ktree::Region& region) const {
  // A leaf instance gathers the LBI of every node whose designated
  // reporting key falls in its region.  (Simulation shortcut: we iterate
  // the node table instead of maintaining per-leaf registration state;
  // the message pattern is identical.)
  Lbi sum;
  for (const chord::NodeIndex i : ring_.live_nodes()) {
    const chord::Node& n = ring_.node(i);
    chord::Key report_key;
    if (n.servers.empty()) {
      std::uint64_t h = 0xB10C0DE5ULL + i;
      report_key = static_cast<chord::Key>(splitmix64(h) >> 32);
    } else {
      report_key = n.servers.front();  // deterministic reporter
    }
    if (!region.contains(report_key)) continue;
    Lbi lbi;
    lbi.load = ring_.node_load(i);
    lbi.capacity = n.capacity;
    if (const auto min = ring_.node_min_server_load(i); min.has_value())
      lbi.min_load = *min;
    sum.merge(lbi);
  }
  return sum;
}

void ContinuousLbi::refresh_all() {
  const std::uint64_t before = messages_;
  // Collect the live instance set, parents before children (larger
  // regions first): each refresh then reads the *previous* interval's
  // child caches, so information climbs exactly one level per interval
  // -- the per-instance independent-timer behaviour of the paper.
  std::vector<std::pair<ktree::Region, chord::Key>> instances;
  tree_.for_each_instance([&](const ktree::Region& r, chord::Key host) {
    instances.emplace_back(r, host);
  });
  std::sort(instances.begin(), instances.end(),
            [](const auto& a, const auto& b) {
              return a.first.len > b.first.len;
            });

  std::map<ktree::Region, Lbi, ktree::RegionOrder> fresh;
  const std::uint32_t degree = tree_.degree();
  for (const auto& [region, host] : instances) {
    // Determine whether this instance currently has child instances.
    bool any_child = false;
    Lbi merged;
    for (std::uint32_t c = 0; c < degree; ++c) {
      const ktree::Region child = region.child(c, degree);
      if (child.len == 0 || !tree_.has_instance(child)) continue;
      any_child = true;
      // Pull the child's cached summary (previous interval's value).
      const auto it = cache_.find(child);
      if (it != cache_.end()) merged.merge(it->second);
      if (latency_(tree_.instance_host(child), host) > 0.0) ++messages_;
    }
    fresh[region] = any_child ? merged : local_contribution(region);
  }
  cache_ = std::move(fresh);
  last_refresh_ = engine_.now();
  if (metrics_ != nullptr) {
    metrics_->counter("clbi.refresh_msgs")
        .add(static_cast<double>(messages_ - before));
    metrics_->gauge("clbi.root_error").set(root_relative_error());
  }
}

Lbi ContinuousLbi::root_estimate() const {
  const auto it = cache_.find(ktree::Region::whole());
  return it == cache_.end() ? Lbi{} : it->second;
}

double ContinuousLbi::root_relative_error() const {
  const Lbi truth = ground_truth_lbi(ring_);
  const Lbi est = root_estimate();
  auto error = [](double a, double b) {
    const double scale = std::max({std::fabs(a), std::fabs(b), 1e-12});
    return std::fabs(a - b) / scale;
  };
  // An empty triple reads its L_min as 0 (a ring with no servers, or a
  // cache that has not converged yet) so the error stays finite.
  const auto finite_min = [](double m) {
    return m == std::numeric_limits<double>::infinity() ? 0.0 : m;
  };
  return std::max({error(est.load, truth.load),
                   error(est.capacity, truth.capacity),
                   error(finite_min(est.min_load), finite_min(truth.min_load))});
}

bool ContinuousLbi::root_is_accurate(double relative_tolerance) const {
  P2PLB_REQUIRE(relative_tolerance >= 0.0);
  return root_relative_error() <= relative_tolerance;
}

}  // namespace p2plb::lb
