#include "lb/lbi.h"

namespace p2plb::lb {

LbiAggregation aggregate_lbi(const ktree::KTree& tree, Rng& rng) {
  const chord::Ring& ring = tree.ring();
  LbiAggregation result;

  // Phase 1: every node picks one reporting VS and delivers its triple to
  // that VS's designated leaf (one message per reporting node).
  std::vector<Lbi> scratch(tree.size());
  for (const chord::NodeIndex i : ring.live_nodes()) {
    const chord::Node& n = ring.node(i);
    Lbi lbi;
    lbi.load = ring.node_load(i);
    lbi.capacity = n.capacity;
    ktree::KtIndex leaf;
    if (n.servers.empty()) {
      // No identity of its own: publish at a hash of the node index.
      std::uint64_t h = 0xB10C0DE5ULL + i;
      const auto key = static_cast<chord::Key>(splitmix64(h) >> 32);
      result.reporter_vs.emplace(i, key);
      leaf = tree.leaf_containing(key);
      // min_load stays +inf: the node contributes no server to L_min.
    } else {
      const std::size_t pick = static_cast<std::size_t>(
          rng.below(n.servers.size()));
      const chord::Key vs = n.servers[pick];
      result.reporter_vs.emplace(i, vs);
      lbi.min_load = *ring.node_min_server_load(i);
      leaf = tree.entry_leaf_for(vs);
    }
    scratch[leaf].merge(lbi);
    ++result.messages;
  }

  // Phase 2: bottom-up fold, one round per tree level.
  for (std::uint16_t d = tree.height(); d > 0; --d) {
    const auto range = tree.level(d);
    for (ktree::KtIndex i = range.begin; i < range.end; ++i) {
      const ktree::KtIndex parent = tree.node(i).parent;
      scratch[parent].merge(scratch[i]);
      ++result.messages;
    }
  }
  result.rounds = static_cast<std::uint32_t>(tree.height()) + 1;
  result.system = scratch[tree.root()];
  if (result.system.min_load == std::numeric_limits<double>::infinity())
    result.system.min_load = 0.0;  // no node reported
  return result;
}

LbiDissemination disseminate_lbi(const ktree::KTree& tree) {
  LbiDissemination result;
  // Top-down: each interior node forwards the root triple to its
  // children; each leaf forwards it to its hosting VS's node.
  for (std::uint16_t d = 0; d <= tree.height(); ++d) {
    const auto range = tree.level(d);
    for (ktree::KtIndex i = range.begin; i < range.end; ++i)
      result.messages += tree.node(i).child_count;
  }
  result.messages += tree.leaf_count();  // leaf -> hosting node handoff
  result.rounds = static_cast<std::uint32_t>(tree.height()) + 1;
  return result;
}

Lbi ground_truth_lbi(const chord::Ring& ring) {
  Lbi lbi;
  lbi.load = ring.total_load();
  lbi.capacity = ring.total_capacity();
  lbi.min_load = ring.virtual_server_count() == 0
                     ? 0.0
                     : ring.min_server_load();
  return lbi;
}

}  // namespace p2plb::lb
