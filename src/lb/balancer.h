// The end-to-end load balancer: the paper's four phases in one call.
//
//   1. LBI aggregation over the K-nary tree          (Section 3.2)
//   2. Node classification                           (Section 3.3)
//   3. Virtual server assignment, bottom-up sweep    (Sections 3.4, 4.3)
//   4. Virtual server transferring                   (Section 3.5)
//
// This is the library's primary entry point.  Callers that need a
// physical-cost breakdown pass a topology-aware ring (nodes attached to
// vertices) and use lb::transfer_costs on the returned assignments.
#pragma once

#include <optional>
#include <span>

#include "chord/ring.h"
#include "common/rng.h"
#include "lb/classify.h"
#include "lb/lbi.h"
#include "lb/reporting.h"
#include "lb/vsa.h"
#include "lb/vst.h"

namespace p2plb::lb {

/// Which VSA entry mapping to use.
enum class BalanceMode : std::uint8_t {
  kProximityIgnorant,  ///< Section 3.4 -- records enter at random VSs
  kProximityAware,     ///< Section 4.3 -- records enter at Hilbert keys
};

/// Balancer configuration (defaults follow the paper's experiments).
struct BalancerConfig {
  std::uint32_t tree_degree = 2;  ///< K (paper: 2 and 8)
  /// Target slack: T_i = (1 + epsilon) * (L/C) * C_i.  The paper calls 0
  /// ideal, but with epsilon exactly 0 the aggregate light spare equals
  /// the aggregate heavy excess *minus* what neutral nodes hold back,
  /// while heavy nodes offer their excess *plus* subset-rounding
  /// overshoot -- so a few percent of shed servers can never place, in
  /// any number of rounds.  A small positive epsilon (0.05 here) restores
  /// the slack and reproduces the paper's "all heavy nodes become light"
  /// figures in a single round; bench/ablation_epsilon sweeps the knob.
  double epsilon = 0.05;
  std::size_t rendezvous_threshold = 30; ///< interior pairing threshold
  SelectionPolicy selection = SelectionPolicy::kExact;
  BalanceMode mode = BalanceMode::kProximityIgnorant;
  /// Pair same-Hilbert-number records first at their entry leaf (see
  /// VsaParams::key_local_rendezvous).  Only affects kProximityAware.
  bool key_local_rendezvous = true;
  /// When false, phase 4 is skipped (assignments are reported but the
  /// ring is left untouched -- useful for what-if analysis).
  bool apply_transfers = true;
};

/// Everything one balancing round produced.
struct BalanceReport {
  Lbi system;                    ///< root triple after aggregation
  LbiAggregation aggregation;    ///< phase-1 details
  LbiDissemination dissemination;
  Classification before;         ///< phase-2 classes, pre-transfer
  VsaResult vsa;                 ///< phase-3 pairings
  std::size_t transfers_applied = 0;  ///< phase-4 count
  Classification after;          ///< re-classification post-transfer
                                 ///< (same system triple)
};

/// Run one complete balancing round over the ring.
///
/// For kProximityAware, `node_keys[i]` must hold node i's Hilbert-derived
/// DHT key (see hilbert::GridQuantizer and lb/proximity.h); it may be
/// empty for kProximityIgnorant.
[[nodiscard]] BalanceReport run_balance_round(
    chord::Ring& ring, const BalancerConfig& config, Rng& rng,
    std::span<const chord::Key> node_keys = {});

}  // namespace p2plb::lb
