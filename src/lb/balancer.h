// The end-to-end load balancer: the paper's four phases in one call.
//
//   1. LBI aggregation over the K-nary tree          (Section 3.2)
//   2. Node classification                           (Section 3.3)
//   3. Virtual server assignment, bottom-up sweep    (Sections 3.4, 4.3)
//   4. Virtual server transferring                   (Section 3.5)
//
// This is the library's primary entry point.  run_balance_round is a
// thin wrapper over lb::ProtocolRound (protocol_round.h) driven on a
// zero-latency network until drained: the round's message/byte accounting
// comes from sim::Network's per-tag counters in both the synchronous and
// the timed path, and the timed path additionally reports per-phase
// start/end times and the round's completion time.  Callers that need a
// physical-cost breakdown pass a topology-aware ring (nodes attached to
// vertices) and use lb::transfer_costs on the returned assignments.
#pragma once

#include <array>
#include <optional>
#include <span>

#include "chord/ring.h"
#include "common/rng.h"
#include "lb/classify.h"
#include "lb/lbi.h"
#include "lb/reporting.h"
#include "lb/vsa.h"
#include "lb/vst.h"

namespace p2plb::lb {

/// Which VSA entry mapping to use.
enum class BalanceMode : std::uint8_t {
  kProximityIgnorant,  ///< Section 3.4 -- records enter at random VSs
  kProximityAware,     ///< Section 4.3 -- records enter at Hilbert keys
};

/// Balancer configuration (defaults follow the paper's experiments).
struct BalancerConfig {
  std::uint32_t tree_degree = 2;  ///< K (paper: 2 and 8)
  /// Target slack: T_i = (1 + epsilon) * (L/C) * C_i.  The paper calls 0
  /// ideal, but with epsilon exactly 0 the aggregate light spare equals
  /// the aggregate heavy excess *minus* what neutral nodes hold back,
  /// while heavy nodes offer their excess *plus* subset-rounding
  /// overshoot -- so a few percent of shed servers can never place, in
  /// any number of rounds.  A small positive epsilon (0.05 here) restores
  /// the slack and reproduces the paper's "all heavy nodes become light"
  /// figures in a single round; bench/ablation_epsilon sweeps the knob.
  double epsilon = 0.05;
  std::size_t rendezvous_threshold = 30; ///< interior pairing threshold
  SelectionPolicy selection = SelectionPolicy::kExact;
  BalanceMode mode = BalanceMode::kProximityIgnorant;
  /// Pair same-Hilbert-number records first at their entry leaf (see
  /// VsaParams::key_local_rendezvous).  Only affects kProximityAware.
  bool key_local_rendezvous = true;
  /// When false, phase 4 is skipped (assignments are reported but the
  /// ring is left untouched -- useful for what-if analysis).
  bool apply_transfers = true;
};

/// The four phases of one balancing round (indexes BalanceReport::phases).
enum class Phase : std::uint8_t {
  kAggregation = 0,    ///< bottom-up LBI sweep (node reports + tree fold)
  kDissemination = 1,  ///< top-down LBI sweep + leaf-to-node handoffs
  kVsa = 2,            ///< record publication + rendezvous sweep
  kTransfer = 3,       ///< virtual-server moves (overlaps the VSA sweep)
};
inline constexpr std::size_t kPhaseCount = 4;

/// Short display name of a phase ("aggregation", "dissemination", "vsa",
/// "transfer") -- shared by report printers and trace span names.
[[nodiscard]] constexpr const char* phase_name(Phase p) noexcept {
  switch (p) {
    case Phase::kAggregation:
      return "aggregation";
    case Phase::kDissemination:
      return "dissemination";
    case Phase::kVsa:
      return "vsa";
    case Phase::kTransfer:
      return "transfer";
  }
  return "?";
}

/// Traffic and timing of one protocol phase.  A view over the unified
/// metrics registry: counts are diffs of the network's registry counters
/// (net.messages{tag=...} / net.bytes{tag=...}) taken at the phase
/// boundaries, with the legacy per-tag sim::Network counters asserted
/// equal as a regression check.  Under the synchronous wrapper the
/// message/byte counts are real but every time is zero (constant-zero
/// latency).  Times are in sim::Time units; kTransfer may start before
/// kVsa ends (Section 3.5's VSA/VST overlap).
struct PhaseMetrics {
  std::uint64_t messages = 0;
  double bytes = 0.0;
  double start = 0.0;
  double end = 0.0;
  [[nodiscard]] double duration() const noexcept { return end - start; }
};

/// Everything one balancing round produced.
struct BalanceReport {
  Lbi system;                    ///< root triple after aggregation
  LbiAggregation aggregation;    ///< phase-1 details
  LbiDissemination dissemination;
  Classification before;         ///< phase-2 classes, pre-transfer
  VsaResult vsa;                 ///< phase-3 pairings
  std::size_t transfers_applied = 0;  ///< phase-4 count
  Classification after;          ///< re-classification post-transfer
                                 ///< (same system triple)
  /// Simulated time from round start to the last transfer delivery (0
  /// under the synchronous wrapper's zero-latency network).
  double completion_time = 0.0;
  /// Per-phase traffic and timing, indexed by Phase.
  std::array<PhaseMetrics, kPhaseCount> phases{};

  [[nodiscard]] const PhaseMetrics& phase(Phase p) const {
    return phases[static_cast<std::size_t>(p)];
  }
};

/// Run one complete balancing round over the ring: a ProtocolRound on a
/// private zero-latency network, drained to completion.  For the same
/// (rng state, ring, config) it makes exactly the transfer decisions the
/// timed path would -- the two differ only in *when* things happen.
///
/// For kProximityAware, `node_keys[i]` must hold node i's Hilbert-derived
/// DHT key (see hilbert::GridQuantizer and lb/proximity.h); it may be
/// empty for kProximityIgnorant.
[[nodiscard]] BalanceReport run_balance_round(
    chord::Ring& ring, const BalancerConfig& config, Rng& rng,
    std::span<const chord::Key> node_keys = {});

}  // namespace p2plb::lb
