#include "lb/vsa.h"

#include <algorithm>
#include <map>

#include "common/error.h"

namespace p2plb::lb {

std::size_t VsaEntries::heavy_count() const {
  std::size_t n = 0;
  for (const auto& [leaf, records] : heavy) n += records.size();
  return n;
}

std::size_t VsaEntries::light_count() const {
  std::size_t n = 0;
  for (const auto& [leaf, records] : light) n += records.size();
  return n;
}

double VsaResult::assigned_load() const {
  double total = 0.0;
  for (const Assignment& a : assignments) total += a.load;
  return total;
}

namespace {

/// Working lists of one KT node during the sweep.  Both are ordered maps
/// so the best-fit rule ("smallest delta >= load") and the "heaviest
/// first" rule are O(log n) each.
struct Lists {
  std::multimap<double, SpareCapacity> lights;   // keyed by delta
  std::multimap<double, ShedCandidate> heavies;  // keyed by load

  [[nodiscard]] std::size_t total() const {
    return lights.size() + heavies.size();
  }
};

/// The rendezvous pairing loop (Section 3.4).  `now` is the simulated
/// time the rendezvous fired (0 without a latency model).
void pair_at(Lists& lists, std::uint16_t depth, double min_load, double now,
             VsaResult& out) {
  // Candidates that found no light stay parked for the parent; lighter
  // candidates may still pair, so the loop continues past them.
  std::vector<ShedCandidate> parked;
  while (!lists.heavies.empty()) {
    // Heaviest candidate first.
    const auto heaviest = std::prev(lists.heavies.end());
    const ShedCandidate candidate = heaviest->second;
    lists.heavies.erase(heaviest);
    // Best fit: the light node with the smallest delta >= load.
    const auto light_it = lists.lights.lower_bound(candidate.load);
    if (light_it == lists.lights.end()) {
      parked.push_back(candidate);
      continue;
    }
    const SpareCapacity spare = light_it->second;
    lists.lights.erase(light_it);
    out.assignments.push_back({candidate.vs, candidate.from, spare.node,
                               candidate.load, depth, now});
    if (depth >= out.pairs_per_depth.size())
      out.pairs_per_depth.resize(static_cast<std::size_t>(depth) + 1, 0);
    ++out.pairs_per_depth[depth];
    out.messages += 2;  // notify both endpoints directly
    const double residual = spare.delta - candidate.load;
    if (residual > 0.0 && residual >= min_load)
      lists.lights.emplace(residual, SpareCapacity{residual, spare.node});
  }
  for (const ShedCandidate& c : parked) lists.heavies.emplace(c.load, c);
}

}  // namespace

VsaResult run_vsa(const ktree::KTree& tree, const VsaEntries& entries,
                  const VsaParams& params) {
  VsaResult result;
  result.rounds = static_cast<std::uint32_t>(tree.height()) + 1;

  // Scratch lists exist only for touched KT nodes.  Ordered: the
  // key-local rendezvous below iterates this map, and its iteration
  // order fixes the order of result.assignments.
  std::map<ktree::KtIndex, Lists> scratch;
  // Record-arrival times per touched node (latency model only).
  std::map<ktree::KtIndex, double> ready;
  auto seed_entries = [&](ktree::KtIndex leaf, const auto& records,
                          auto member) {
    Lists& lists = scratch[leaf];
    for (const auto& r : records) {
      double key_value;
      if constexpr (std::is_same_v<std::decay_t<decltype(r)>,
                                   ShedCandidate>) {
        key_value = r.load;
      } else {
        key_value = r.delta;
      }
      (lists.*member).emplace(key_value, r);
      ++result.messages;  // node -> leaf report
    }
  };
  for (const auto& [leaf, records] : entries.heavy) {
    P2PLB_REQUIRE(leaf < tree.size());
    P2PLB_REQUIRE_MSG(tree.node(leaf).is_leaf(),
                      "VSA records must enter at leaves");
    seed_entries(leaf, records, &Lists::heavies);
  }
  for (const auto& [leaf, records] : entries.light) {
    P2PLB_REQUIRE(leaf < tree.size());
    P2PLB_REQUIRE_MSG(tree.node(leaf).is_leaf(),
                      "VSA records must enter at leaves");
    seed_entries(leaf, records, &Lists::lights);
  }

  // Finest-level rendezvous: within each leaf, records published under
  // identical DHT keys pair first (see VsaParams::key_local_rendezvous).
  // This happens at the leaf's host, so it costs no extra messages.
  if (params.key_local_rendezvous) {
    for (auto& [leaf, lists] : scratch) {
      const std::uint16_t depth = tree.node(leaf).depth;
      const std::size_t first_pair = result.assignments.size();
      // Ordered: pairing order and the merge order of leftovers back
      // into the leaf lists (equal-key multimap ties!) follow this walk.
      std::map<chord::Key, Lists> by_key;
      for (auto& [load, record] : lists.heavies)
        by_key[record.origin_key].heavies.emplace(load, record);
      for (auto& [delta, record] : lists.lights)
        by_key[record.origin_key].lights.emplace(delta, record);
      lists.heavies.clear();
      lists.lights.clear();
      for (auto& [key, group] : by_key) {
        if (!group.heavies.empty() && !group.lights.empty() &&
            group.total() >= params.rendezvous_threshold) {
          pair_at(group, depth, params.min_load, 0.0, result);
        }
        lists.heavies.merge(group.heavies);
        lists.lights.merge(group.lights);
      }
      if (params.trace) {
        for (std::size_t a = first_pair; a < result.assignments.size(); ++a)
          (*params.trace)[leaf].assignments.push_back(
              static_cast<std::uint32_t>(a));
      }
    }
  }

  // Bottom-up sweep: deepest level first.  Children at level d+1 have
  // already pushed their leftovers into the parent's scratch by the time
  // level d is processed (leaves can exist at any depth).
  for (std::uint16_t d = static_cast<std::uint16_t>(tree.height() + 1);
       d-- > 0;) {
    const auto range = tree.level(d);
    for (ktree::KtIndex i = range.begin; i < range.end; ++i) {
      const auto it = scratch.find(i);
      if (it == scratch.end()) continue;
      // Move the lists out before touching the map again: creating the
      // parent's scratch entry below must not alias this node's entry.
      Lists lists = std::move(it->second);
      scratch.erase(it);
      const double now = params.latency ? ready[i] : 0.0;
      const bool is_root = (i == tree.root());
      const std::size_t first_pair = result.assignments.size();
      if (is_root || lists.total() >= params.rendezvous_threshold)
        pair_at(lists, d, params.min_load, now, result);
      if (params.trace) {
        for (std::size_t a = first_pair; a < result.assignments.size(); ++a)
          (*params.trace)[i].assignments.push_back(
              static_cast<std::uint32_t>(a));
      }
      if (is_root) {
        result.sweep_completion_time =
            std::max(result.sweep_completion_time, now);
        for (auto& [k, r] : lists.heavies)
          result.unassigned_heavy.push_back(r);
        for (auto& [k, r] : lists.lights)
          result.unassigned_light.push_back(r);
        continue;
      }
      // Push leftovers to the parent (one message per record).
      if (lists.total() > 0) {
        const ktree::KtIndex parent_index = tree.node(i).parent;
        Lists& parent = scratch[parent_index];
        result.messages += lists.total();
        if (params.trace)
          (*params.trace)[i].forwarded_up =
              static_cast<std::uint32_t>(lists.total());
        parent.heavies.merge(lists.heavies);
        parent.lights.merge(lists.lights);
        if (params.latency) {
          const double arrive =
              now + (*params.latency)(tree.node(i).host_vs,
                                      tree.node(parent_index).host_vs);
          ready[parent_index] = std::max(ready[parent_index], arrive);
        }
      } else {
        // Nothing moved up, but the sweep still "finished" here.
        result.sweep_completion_time =
            std::max(result.sweep_completion_time, now);
      }
    }
  }
  return result;
}

}  // namespace p2plb::lb
