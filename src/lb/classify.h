// Node classification (Section 3.3).
//
// With the system triple <L, C, L_min> in hand, every node i computes its
// capacity-proportional target load
//
//     T_i = (1 + epsilon) * (L / C) * C_i
//
// (epsilon trades movement volume against balance quality; ideally 0) and
// classifies itself:
//
//     heavy    iff  L_i > T_i
//     light    iff  T_i - L_i >= L_min
//     neutral  iff  0 <= T_i - L_i < L_min
//
// Note the gap semantics: a node whose spare target capacity cannot fit
// even the lightest virtual server in the system is neutral -- it would
// be useless (and harmful) as a transfer destination.
#pragma once

#include <vector>

#include "chord/ring.h"
#include "lb/lbi.h"

namespace p2plb::lb {

/// Classification outcome for one node.
enum class NodeClass : std::uint8_t { kHeavy, kLight, kNeutral };

/// Per-node classification record.
struct NodeAssessment {
  chord::NodeIndex node = 0;
  NodeClass cls = NodeClass::kNeutral;
  double load = 0.0;      ///< L_i
  double capacity = 0.0;  ///< C_i
  double target = 0.0;    ///< T_i
  /// T_i - L_i: positive spare for lights, negative excess for heavies.
  double delta = 0.0;
};

/// Classify a single node given the system triple.
[[nodiscard]] NodeAssessment classify_node(const chord::Ring& ring,
                                           chord::NodeIndex node,
                                           const Lbi& system, double epsilon);

/// Classification of every live node.
struct Classification {
  std::vector<NodeAssessment> nodes;  // one entry per live node
  std::size_t heavy_count = 0;
  std::size_t light_count = 0;
  std::size_t neutral_count = 0;

  [[nodiscard]] double heavy_fraction() const noexcept {
    return nodes.empty() ? 0.0
                         : static_cast<double>(heavy_count) /
                               static_cast<double>(nodes.size());
  }
};

/// Classify all live nodes (epsilon >= 0).
[[nodiscard]] Classification classify_all(const chord::Ring& ring,
                                          const Lbi& system, double epsilon);

}  // namespace p2plb::lb
