#include "lb/health.h"

#include <algorithm>
#include <cstdint>

#include "common/stats.h"
#include "lb/classify.h"

namespace p2plb::lb {

namespace {

/// Approximate depth of a tree instance from its region length: how many
/// K-way splits of the whole space reach a region this small.  Children
/// split with exact integer boundaries, so sibling lengths differ by at
/// most one -- division by `degree` recovers the level exactly for every
/// realistic space size.
std::uint32_t region_depth(std::uint64_t len, std::uint32_t degree) {
  std::uint32_t depth = 0;
  for (std::uint64_t l = chord::kSpaceSize; l > len; l /= degree) ++depth;
  return depth;
}

}  // namespace

HealthProbe::HealthProbe(const chord::Ring& ring, HealthProbeConfig config)
    : ring_(ring), config_(std::move(config)) {
  P2PLB_REQUIRE(config_.epsilon >= 0.0);
  P2PLB_REQUIRE_MSG(!config_.prefix.empty(), "health prefix must be non-empty");
}

std::vector<std::pair<std::string, double>> HealthProbe::measure(
    double now) const {
  std::vector<std::pair<std::string, double>> out;
  auto emit = [&](std::string_view gauge, double value) {
    out.emplace_back(config_.prefix + "." + std::string(gauge), value);
  };

  const std::vector<chord::NodeIndex> live = ring_.live_nodes();
  emit("nodes", static_cast<double>(live.size()));

  const Lbi truth = ground_truth_lbi(ring_);
  const Classification cls = classify_all(ring_, truth, config_.epsilon);
  emit("heavy_fraction", cls.heavy_fraction());

  // Unit loads: load_i / ((L / C) * C_i).  With no load (or no capacity)
  // every node is exactly at its share of nothing; report all-zero gauges
  // rather than dividing by zero.
  std::vector<double> unit;
  unit.reserve(live.size());
  const double fair = truth.capacity > 0.0 ? truth.load / truth.capacity : 0.0;
  for (const chord::NodeIndex i : live) {
    const double share = fair * ring_.node(i).capacity;
    unit.push_back(share > 0.0 ? ring_.node_load(i) / share : 0.0);
  }
  std::vector<double> sorted = unit;
  std::sort(sorted.begin(), sorted.end());
  emit("mean_unit_load",
       unit.empty() ? 0.0 : summarize(unit).mean);
  emit("max_unit_load", sorted.empty() ? 0.0 : sorted.back());
  emit("p99_unit_load", percentile_sorted(sorted, 0.99));
  emit("imbalance", imbalance_factor(unit));
  emit("gini_unit_load", gini(unit));

  std::vector<double> vs_counts;
  vs_counts.reserve(live.size());
  for (const chord::NodeIndex i : live)
    vs_counts.push_back(static_cast<double>(ring_.node(i).servers.size()));
  std::sort(vs_counts.begin(), vs_counts.end());
  const std::string vs = config_.prefix + ".vs_per_node";
  out.emplace_back(vs + "{q=max}",
                   vs_counts.empty() ? 0.0 : vs_counts.back());
  out.emplace_back(vs + "{q=p50}", percentile_sorted(vs_counts, 0.50));
  out.emplace_back(vs + "{q=p99}", percentile_sorted(vs_counts, 0.99));

  if (clbi_ != nullptr) {
    emit("clbi_root_error", clbi_->root_relative_error());
    const sim::Time last = clbi_->last_refresh_time();
    emit("clbi_staleness", last < 0.0 ? -1.0 : now - last);
  }
  if (tree_ != nullptr) {
    emit("ktree_instances", static_cast<double>(tree_->instance_count()));
    std::uint32_t height = 0;
    tree_->for_each_instance([&](const ktree::Region& r, chord::Key) {
      height = std::max(height, region_depth(r.len, tree_->degree()));
    });
    emit("ktree_depth", static_cast<double>(height));
  }
  return out;
}

void HealthProbe::sample_into(double t, obs::TimeSeriesSink& sink) const {
  for (const auto& [key, value] : measure(t)) sink.append(t, key, value);
}

void HealthProbe::register_windows(obs::WindowedAggregator& windows) const {
  const std::string p = config_.prefix + ".";
  const obs::SeriesId heavy = windows.gauge_series(p + "heavy_fraction");
  const obs::SeriesId imbalance = windows.gauge_series(p + "imbalance");
  const obs::SeriesId mean_unit = windows.gauge_series(p + "mean_unit_load");
  const obs::SeriesId max_unit = windows.gauge_series(p + "max_unit_load");
  const obs::ColumnId units = windows.column_series(p + "unit_load");
  windows.add_boundary_probe([this, &windows, heavy, imbalance, mean_unit,
                              max_unit, units](double boundary) {
    const std::vector<chord::NodeIndex> live = ring_.live_nodes();
    const Lbi truth = ground_truth_lbi(ring_);
    const Classification cls = classify_all(ring_, truth, config_.epsilon);
    // Unit loads land in the SoA column (one dense double per node --
    // the only state that scales with N) and fold into the
    // `<prefix>.unit_load` histogram when this bucket closes.
    std::vector<double>& col = windows.column_data(units, live.size());
    const double fair =
        truth.capacity > 0.0 ? truth.load / truth.capacity : 0.0;
    for (std::size_t j = 0; j < live.size(); ++j) {
      const double share = fair * ring_.node(live[j]).capacity;
      col[j] = share > 0.0 ? ring_.node_load(live[j]) / share : 0.0;
    }
    windows.record(heavy, boundary, cls.heavy_fraction());
    windows.record(imbalance, boundary, imbalance_factor(col));
    windows.record(mean_unit, boundary,
                   col.empty() ? 0.0 : summarize(col).mean);
    windows.record(max_unit, boundary,
                   col.empty() ? 0.0
                               : *std::max_element(col.begin(), col.end()));
  });
}

}  // namespace p2plb::lb
