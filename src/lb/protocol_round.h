// One event-driven balancing round on the discrete-event engine.
//
// The four phases of Section 3 run as scheduled events over a shared
// sim::Network, so the paper's *temporal* claims -- LBI aggregation and
// VS assignment complete in O(log_K N) time, transfers overlap the sweep
// -- become measurable, and the round composes with concurrent protocols
// (churn, tree maintenance) on the same engine.
//
//   phase 1  every node sends its <L, C, L_min> triple to its entry
//            leaf; the fold climbs the tree via ktree::begin_aggregation.
//   phase 2  the root triple travels down via ktree::begin_dissemination;
//            each leaf hands it off to its hosting node.
//   phase 3  heavy/light records travel to their entry leaves; each KT
//            node pairs when its last input arrives and forwards
//            leftovers upward; pair notifications go to both endpoints.
//   phase 4  on receiving its notification, a heavy node streams the
//            virtual server to its destination (applied to the ring at
//            delivery time).  Phase 4 overlaps phase 3: deep rendezvous
//            fire before the sweep finishes (Section 3.5).
//
// What to transfer is decided from a ring snapshot at construction using
// the same oracle pipeline as run_balance_round -- aggregate_lbi,
// classify_all, build_entries_*, run_vsa -- and the events replay that
// dataflow (via the VsaTrace) with real latencies.  The refactor changes
// *when*, never *what*: for equal rng state the timed round and the
// synchronous wrapper produce identical pairings and identical
// post-transfer classifications.  Every remote hop passes through
// sim::Network::send under a per-phase tag, so message/byte/latency
// accounting lives in exactly one place; the per-phase counters are
// emitted as BalanceReport::phases and the legacy analytic counters
// (LbiAggregation/LbiDissemination/VsaResult::messages) are overwritten
// from the network's tallies (tests assert the two always agree).
//
// The ring may churn while a round is in flight: decisions were
// snapshotted, endpoints were snapshotted, and a transfer whose server
// vanished or whose destination died is skipped at delivery time (the
// lazy protocol) -- no event ever blocks on a crashed node, so a round
// always completes.
#pragma once

#include <array>
#include <functional>
#include <span>
#include <string_view>
#include <utility>
#include <vector>

#include "common/error.h"
#include "ktree/tree.h"
#include "lb/balancer.h"
#include "obs/metrics.h"
#include "sim/network.h"

namespace p2plb::lb {

/// Per-phase traffic tags used on the shared network.
inline constexpr std::string_view kTagAggregation = "lb.aggregation";
inline constexpr std::string_view kTagDissemination = "lb.dissemination";
inline constexpr std::string_view kTagVsa = "lb.vsa";
inline constexpr std::string_view kTagTransfer = "lb.transfer";

/// Wire-size model (bytes per message class) for the byte accounting.
struct WireModel {
  double lbi = 24.0;     ///< one <L, C, L_min> triple
  double record = 32.0;  ///< one heavy/light VSA record
  double notify = 16.0;  ///< rendezvous -> endpoint pair notification
  /// Phase-4 payload per unit of load moved (a transfer's bytes are its
  /// assignment's load times this).
  double transfer_per_load = 1.0;
};

/// Timed-round configuration.
struct ProtocolRoundConfig {
  BalancerConfig balancer;
  WireModel wire;
};

/// A node's network endpoint: its topology attachment when it has one,
/// else its node index.  Latency functions driving the round must speak
/// this convention (topo::DistanceOracle::latency speaks attachment
/// vertices).
[[nodiscard]] sim::Endpoint node_endpoint(const chord::Ring& ring,
                                          chord::NodeIndex node);

/// One balancing round as a protocol over simulated time.
///
/// Construction snapshots the ring and decides everything (consuming the
/// same rng draws as run_balance_round); start() schedules phase 1 at the
/// engine's current time and the remaining phases chain behind it.  The
/// round object must outlive its events (i.e. live until done()); `net`,
/// `ring` and `rng` must outlive the round.
class ProtocolRound {
 public:
  ProtocolRound(sim::Network& net, chord::Ring& ring,
                const ProtocolRoundConfig& config, Rng& rng,
                std::span<const chord::Key> node_keys = {});

  /// Schedule the round starting now.  `on_complete`, if given, fires
  /// from the engine once the last transfer has been delivered.
  void start(std::function<void(const BalanceReport&)> on_complete = {});

  [[nodiscard]] bool started() const noexcept { return started_; }
  [[nodiscard]] bool done() const noexcept { return done_; }

  /// The finished report (throws unless done()).
  [[nodiscard]] const BalanceReport& report() const {
    P2PLB_REQUIRE_MSG(done_, "round has not completed");
    return report_;
  }

  /// The sweep decisions, fixed at construction -- what the round WILL
  /// do.  Valid before start(); timing fields are filled in as it runs.
  [[nodiscard]] const VsaResult& planned() const noexcept {
    return report_.vsa;
  }

  /// The converged tree snapshot the round runs over.
  [[nodiscard]] const ktree::KTree& tree() const noexcept { return tree_; }

 private:
  [[nodiscard]] PhaseMetrics& metrics(Phase p) noexcept {
    return report_.phases[static_cast<std::size_t>(p)];
  }
  static std::string_view tag_of(Phase p) noexcept;
  void begin_phase(Phase p);
  void end_phase(Phase p);

  void start_aggregation();
  void start_dissemination();
  void start_vsa();
  void vsa_send(sim::Endpoint from, sim::Endpoint to, double bytes,
                std::function<void()> on_receive);
  void vsa_record_arrival(ktree::KtIndex node);
  void vsa_process(ktree::KtIndex node);
  void finish_vsa();
  void begin_transfer(std::size_t assignment_index);
  void maybe_finish();

  sim::Network& net_;
  chord::Ring& ring_;
  ProtocolRoundConfig config_;
  ktree::KTree tree_;

  /// Endpoint of the node hosting virtual server `vs` (snapshot; binary
  /// search over host_by_vs_).
  [[nodiscard]] sim::Endpoint host_endpoint_of(chord::Key vs) const;

  // Decisions and snapshots, fixed at construction.  Lookups here sit on
  // the per-message hot path of a timed round, so they are dense arrays
  // indexed by NodeIndex/KtIndex (or a sorted flat map), not hash maps.
  BalanceReport report_;
  VsaEntries entries_;
  VsaTrace trace_;
  std::vector<sim::Endpoint> host_ep_;  // per KT node: its host's endpoint
  /// (vs key, host endpoint), sorted by key; deduplicated (a VS hosting
  /// several tree nodes maps to one endpoint).
  std::vector<std::pair<chord::Key, sim::Endpoint>> host_by_vs_;
  std::vector<sim::Endpoint> node_ep_;  // per NodeIndex; live nodes only
  /// (entry leaf, reporting node) in live-node order.
  std::vector<std::pair<ktree::KtIndex, chord::NodeIndex>> report_plan_;

  // Observability.  The round always has a registry (the network creates
  // an owned one on demand); PhaseMetrics are registry-counter diffs with
  // the legacy per-tag counters asserted equal (see balancer.h).
  struct PhaseCounters {
    obs::Counter* messages = nullptr;
    obs::Counter* bytes = nullptr;
  };
  obs::MetricsRegistry* registry_ = nullptr;
  std::array<PhaseCounters, kPhaseCount> phase_counters_{};
  // Causal spans (zero when no tracer is attached): the round span roots
  // one trace; each phase span and per-transfer async span is a child of
  // the message whose delivery started it (the round span for phase 1).
  obs::SpanContext round_ctx_;
  std::array<obs::SpanContext, kPhaseCount> phase_ctx_{};
  std::vector<obs::SpanContext> transfer_ctx_;  // per assignment index

  // Event-time state.
  std::function<void(const BalanceReport&)> on_complete_;
  double t0_ = 0.0;
  std::array<sim::TrafficCounters, kPhaseCount> phase_base_{};
  std::array<std::pair<double, double>, kPhaseCount> phase_reg_base_{};
  std::vector<std::size_t> lbi_waits_;  // per KT node (leaves only used)
  std::function<void(ktree::KtIndex)> release_leaf_;
  std::size_t handoffs_left_ = 0;
  std::vector<std::size_t> vsa_waits_;  // per KT node
  std::uint64_t vsa_outstanding_ = 0;
  bool vsa_done_ = false;
  std::size_t transfers_outstanding_ = 0;
  bool transfer_started_ = false;
  bool started_ = false;
  bool done_ = false;
};

}  // namespace p2plb::lb
