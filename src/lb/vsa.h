// Virtual Server Assignment (Sections 3.4 and 4.3).
//
// Heavy nodes publish <L_i,k, v_i,k, addr(i)> for each virtual server
// they intend to shed; light nodes publish <delta_j = T_j - L_j, addr(j)>.
// Records enter the K-nary tree at a leaf (which leaf depends on the
// mode: the reporter's own random VS for the proximity-ignorant scheme,
// the leaf owning the node's Hilbert key for the proximity-aware scheme)
// and climb toward the root.  Any KT node whose two lists together reach
// the rendezvous threshold pairs them greedily:
//
//   repeat: take the heaviest unassigned server load L; pick the light
//   node with the smallest delta >= L (best fit); re-insert the residual
//   delta' = delta - L if delta' >= L_min.
//
// Unpairable records propagate to the parent; the root pairs without the
// threshold constraint.  Because each subtree covers a contiguous arc of
// the identifier space, pairing happens first among records that entered
// close together -- which the proximity-aware mapping turns into
// *physical* closeness.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "chord/ring.h"
#include "ktree/protocol.h"
#include "ktree/tree.h"

namespace p2plb::lb {

/// A virtual server a heavy node offers to shed.
struct ShedCandidate {
  double load = 0.0;
  chord::Key vs = 0;
  chord::NodeIndex from = 0;
  /// The DHT key the record was published under (the node's Hilbert
  /// number in proximity-aware mode; its reporting VS id otherwise).
  chord::Key origin_key = 0;
};

/// A light node's spare target capacity.
struct SpareCapacity {
  double delta = 0.0;
  chord::NodeIndex node = 0;
  /// See ShedCandidate::origin_key.
  chord::Key origin_key = 0;
};

/// One matched transfer decided by the VSA sweep.
struct Assignment {
  chord::Key vs = 0;
  chord::NodeIndex from = 0;
  chord::NodeIndex to = 0;
  double load = 0.0;
  /// Tree depth of the rendezvous KT node that made the pairing (root=0).
  std::uint16_t rendezvous_depth = 0;
  /// Simulated time at which the rendezvous fired (0 unless the sweep
  /// ran with a latency model; see VsaParams::latency).  Deep rendezvous
  /// fire early -- this is what lets VST overlap VSA (Section 3.5).
  double available_at = 0.0;
};

/// Where each record enters the tree: leaf index -> records.
///
/// Ordered maps on purpose: both the sweep and lb::ProtocolRound iterate
/// these, and the iteration order fixes the order of assignments, trace
/// events and network sends.  Hash order would make all of that
/// standard-library-dependent (see the no-unordered-iteration lint rule).
struct VsaEntries {
  std::map<ktree::KtIndex, std::vector<ShedCandidate>> heavy;
  std::map<ktree::KtIndex, std::vector<SpareCapacity>> light;

  [[nodiscard]] std::size_t heavy_count() const;
  [[nodiscard]] std::size_t light_count() const;
};

/// Per-KT-node record of what the sweep did there: which assignments the
/// node's rendezvous produced and how many leftover records it pushed to
/// its parent.  Together with VsaEntries this is the sweep's complete
/// dataflow, which is what lb::ProtocolRound replays as scheduled events
/// on the sim engine -- the replay re-times the sweep without re-deciding
/// anything, so the timed and synchronous paths pair identically.
struct VsaNodeTrace {
  /// Indices into VsaResult::assignments, in pairing order.
  std::vector<std::uint32_t> assignments;
  /// Leftover records forwarded to the parent (one message each).
  std::uint32_t forwarded_up = 0;
};
/// Ordered for the same reason as VsaEntries: ProtocolRound derives its
/// send schedule from a walk over this map.
using VsaTrace = std::map<ktree::KtIndex, VsaNodeTrace>;

/// Sweep parameters.
struct VsaParams {
  /// Interior KT nodes pair only once |heavy|+|light| reaches this
  /// (the paper's example value is 30); the root always pairs.
  std::size_t rendezvous_threshold = 30;
  /// System L_min: a light's residual spare is re-inserted only if it
  /// could still fit the smallest server in the system.
  double min_load = 0.0;
  /// When true, a leaf rendezvous first pairs records published under
  /// *identical* DHT keys before mixing its whole list.  Records with
  /// equal Hilbert numbers are certified physically close (Section
  /// 4.2.1: "a smaller n increases the likelihood that two physically
  /// close nodes have the same Hilbert number"), but several distinct
  /// numbers usually share one leaf -- the identifier space is much
  /// coarser than the grid -- so without this finest-level rendezvous
  /// the leaf would mix nearby-but-distinct clusters.  No effect on the
  /// proximity-ignorant scheme, whose origin keys are per-node unique.
  bool key_local_rendezvous = true;
  /// Optional sweep latency model.  When set, the sweep computes each
  /// KT node's record-arrival time (leaves at 0; an interior node is
  /// ready when its last contributing child's records arrive) and stamps
  /// every Assignment with the simulated time its rendezvous fired.
  /// Must outlive the run_vsa call.
  const ktree::VsLatencyFn* latency = nullptr;
  /// When set, filled with the per-node dataflow of the sweep (see
  /// VsaNodeTrace).  Must outlive the run_vsa call.
  VsaTrace* trace = nullptr;
};

/// Outcome of one bottom-up VSA sweep.
struct VsaResult {
  std::vector<Assignment> assignments;
  /// Records that reached the root and still could not be paired.
  std::vector<ShedCandidate> unassigned_heavy;
  std::vector<SpareCapacity> unassigned_light;
  /// Bottom-up rounds (== tree height + 1): the O(log_K N) bound.
  std::uint32_t rounds = 0;
  /// Record-movement + pair-notification messages.
  std::uint64_t messages = 0;
  /// assignments-per-rendezvous-depth histogram (index = depth).
  std::vector<std::uint32_t> pairs_per_depth;
  /// With a latency model: time the whole bottom-up sweep completed
  /// (records that climbed to the root arrived there).
  double sweep_completion_time = 0.0;

  [[nodiscard]] double assigned_load() const;
};

/// Run the bottom-up VSA sweep over the converged tree.
[[nodiscard]] VsaResult run_vsa(const ktree::KTree& tree,
                                const VsaEntries& entries,
                                const VsaParams& params);

}  // namespace p2plb::lb
