#include "lb/protocol_round.h"

#include <algorithm>

#include "ktree/protocol.h"
#include "obs/profiler.h"

namespace p2plb::lb {

sim::Endpoint node_endpoint(const chord::Ring& ring, chord::NodeIndex node) {
  const std::uint32_t attachment = ring.node(node).attachment;
  return attachment != chord::Node::kNoAttachment ? attachment : node;
}

sim::Endpoint ProtocolRound::host_endpoint_of(chord::Key vs) const {
  const auto it = std::lower_bound(
      host_by_vs_.begin(), host_by_vs_.end(), vs,
      [](const auto& entry, chord::Key k) { return entry.first < k; });
  P2PLB_ASSERT_MSG(it != host_by_vs_.end() && it->first == vs,
                   "virtual server is not a tree host");
  return it->second;
}

ProtocolRound::ProtocolRound(sim::Network& net, chord::Ring& ring,
                             const ProtocolRoundConfig& config, Rng& rng,
                             std::span<const chord::Key> node_keys)
    : net_(net),
      ring_(ring),
      config_(config),
      tree_(ring, config.balancer.tree_degree) {
  const BalancerConfig& bal = config_.balancer;
  P2PLB_REQUIRE(bal.epsilon >= 0.0);
  P2PLB_REQUIRE_MSG(
      bal.mode == BalanceMode::kProximityIgnorant || !node_keys.empty(),
      "proximity-aware balancing needs per-node Hilbert keys");

  // Decide everything up front, consuming rng exactly like the oracle
  // pipeline: the events below only re-time this dataflow.
  report_.aggregation = aggregate_lbi(tree_, rng);
  report_.dissemination = disseminate_lbi(tree_);
  report_.system = report_.aggregation.system;
  report_.before = classify_all(ring_, report_.system, bal.epsilon);
  entries_ = bal.mode == BalanceMode::kProximityAware
                 ? build_entries_proximity(tree_, report_.before, node_keys,
                                           bal.selection)
                 : build_entries_ignorant(tree_, report_.before,
                                          report_.aggregation.reporter_vs,
                                          bal.selection);
  VsaParams params{bal.rendezvous_threshold, report_.system.min_load,
                   bal.key_local_rendezvous};
  params.trace = &trace_;
  report_.vsa = run_vsa(tree_, entries_, params);

  // Endpoint snapshots: decisions survive churn during the round.
  host_ep_.resize(tree_.size());
  host_by_vs_.reserve(tree_.size());
  for (ktree::KtIndex i = 0; i < tree_.size(); ++i) {
    const chord::Key vs = tree_.node(i).host_vs;
    host_ep_[i] = node_endpoint(ring_, ring_.server_owner(vs));
    host_by_vs_.emplace_back(vs, host_ep_[i]);
  }
  // A VS hosting several tree nodes appears once; every duplicate carries
  // the same endpoint, so keeping the first is lossless.
  std::sort(host_by_vs_.begin(), host_by_vs_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  host_by_vs_.erase(
      std::unique(host_by_vs_.begin(), host_by_vs_.end(),
                  [](const auto& a, const auto& b) {
                    return a.first == b.first;
                  }),
      host_by_vs_.end());
  node_ep_.resize(ring_.node_count(), 0);
  lbi_waits_.resize(tree_.size(), 0);
  vsa_waits_.resize(tree_.size(), 0);
  for (const chord::NodeIndex i : ring_.live_nodes()) {
    node_ep_[i] = node_endpoint(ring_, i);
    // Reporting plan mirrors aggregate_lbi's leaf choice per node.
    const chord::Key key = report_.aggregation.reporter_vs.at(i);
    const ktree::KtIndex leaf = ring_.node(i).servers.empty()
                                    ? tree_.leaf_containing(key)
                                    : tree_.entry_leaf_for(key);
    report_plan_.emplace_back(leaf, i);
  }

  // Resolve the per-phase registry handles once: PhaseMetrics are diffs
  // of these counters taken at phase boundaries.
  registry_ = &net_.metrics();
  for (std::size_t p = 0; p < kPhaseCount; ++p) {
    const obs::Labels labels{
        {"tag", std::string(tag_of(static_cast<Phase>(p)))}};
    phase_counters_[p] =
        PhaseCounters{&registry_->counter("net.messages", labels),
                      &registry_->counter("net.bytes", labels)};
  }
}

std::string_view ProtocolRound::tag_of(Phase p) noexcept {
  switch (p) {
    case Phase::kAggregation:
      return kTagAggregation;
    case Phase::kDissemination:
      return kTagDissemination;
    case Phase::kVsa:
      return kTagVsa;
    case Phase::kTransfer:
      return kTagTransfer;
  }
  return {};
}

void ProtocolRound::begin_phase(Phase p) {
  const std::size_t i = static_cast<std::size_t>(p);
  metrics(p).start = net_.engine().now();
  phase_base_[i] = net_.counters(tag_of(p));
  phase_reg_base_[i] = {phase_counters_[i].messages->value(),
                        phase_counters_[i].bytes->value()};
  if (obs::Tracer* tr = net_.tracer()) {
    // Child of whatever caused the transition: the round span for phase
    // 1 (start() installs it as ambient), the last-arriving message of
    // the previous phase otherwise.
    phase_ctx_[i] = tr->child_of(net_.current_context());
    tr->begin(net_.engine().now(), tag_of(p), phase_name(p), phase_ctx_[i]);
  }
}

void ProtocolRound::end_phase(Phase p) {
  const std::size_t i = static_cast<std::size_t>(p);
  PhaseMetrics& m = metrics(p);
  m.end = net_.engine().now();
  // The registry is the accounting source; the legacy per-tag counters
  // must tell the identical story (regression check for the migration).
  m.messages = static_cast<std::uint64_t>(
      phase_counters_[i].messages->value() - phase_reg_base_[i].first);
  m.bytes = phase_counters_[i].bytes->value() - phase_reg_base_[i].second;
  const sim::TrafficCounters& base = phase_base_[i];
  const sim::TrafficCounters now = net_.counters(tag_of(p));
  P2PLB_ASSERT_MSG(m.messages == now.messages - base.messages &&
                       m.bytes == now.bytes - base.bytes,
                   "registry phase diff diverged from legacy counters");
  // Phase 4's span closes once, in maybe_finish -- end_phase(kTransfer)
  // is re-stamped on every delivery.
  if (p != Phase::kTransfer)
    if (obs::Tracer* tr = net_.tracer())
      tr->end(net_.engine().now(), tag_of(p), phase_name(p), phase_ctx_[i],
              {obs::arg("messages", m.messages), obs::arg("bytes", m.bytes)});
}

void ProtocolRound::start(
    std::function<void(const BalanceReport&)> on_complete) {
  P2PLB_REQUIRE_MSG(!started_, "round already started");
  started_ = true;
  on_complete_ = std::move(on_complete);
  t0_ = net_.engine().now();
  // Sized even untraced so a mid-round tracer attach cannot index out of
  // range (the contexts just stay zero).
  transfer_ctx_.resize(report_.vsa.assignments.size());
  if (obs::Tracer* tr = net_.tracer()) {
    // The round span roots one fresh trace; everything the round causes
    // -- phases, messages, matches, transfers -- descends from it.
    round_ctx_ = obs::SpanContext{tr->new_trace_id(), tr->new_span_id(), 0};
    tr->begin(t0_, "lb.round", "round", round_ctx_,
              {obs::arg("nodes", report_plan_.size()),
               obs::arg("planned_transfers", report_.vsa.assignments.size())});
  }
  // Ambient for the synchronous fan-out below: phase 1's report sends
  // (and reporter-less leaf folds) parent to the round span.
  const sim::Network::ContextScope scope(net_, round_ctx_);
  // Host-time analogue: the first wave of sends carries a "round" frame,
  // and the network propagates it down every causal chain, so the whole
  // round's wall cost nests under one flame-graph root.
  obs::Profiler* const prof = net_.profiler();
  const obs::Profiler::Scope prof_scope(
      prof, prof != nullptr ? prof->intern("round", "lb") : 0);
  begin_phase(Phase::kAggregation);
  start_aggregation();
}

void ProtocolRound::start_aggregation() {
  release_leaf_ = ktree::begin_aggregation(
      net_, tree_,
      [this](chord::Key vs) { return host_endpoint_of(vs); },
      {std::string(kTagAggregation), config_.wire.lbi},
      [this](const ktree::SweepResult&) {
        end_phase(Phase::kAggregation);
        begin_phase(Phase::kDissemination);
        start_dissemination();
      });

  // A leaf joins the fold only after every node reporting through it has
  // delivered its triple; reporter-less leaves fold immediately.
  for (const auto& [leaf, node] : report_plan_) ++lbi_waits_[leaf];
  for (ktree::KtIndex i = 0; i < tree_.size(); ++i)
    if (tree_.node(i).is_leaf() && lbi_waits_[i] == 0) release_leaf_(i);
  for (const auto& [leaf, node] : report_plan_) {
    net_.send(
        node_ep_[node], host_ep_[leaf],
        [this, leaf = leaf] {
          P2PLB_ASSERT(lbi_waits_[leaf] > 0);
          if (--lbi_waits_[leaf] == 0) release_leaf_(leaf);
        },
        config_.wire.lbi, 0.0, kTagAggregation);
  }
}

void ProtocolRound::start_dissemination() {
  handoffs_left_ = tree_.leaf_count();
  ktree::begin_dissemination(
      net_, tree_,
      [this](chord::Key vs) { return host_endpoint_of(vs); },
      {std::string(kTagDissemination), config_.wire.lbi},
      [this](ktree::KtIndex leaf) {
        // Leaf -> hosting-node handoff (zero distance, still a message).
        net_.send(
            host_ep_[leaf], host_ep_[leaf],
            [this] {
              P2PLB_ASSERT(handoffs_left_ > 0);
              if (--handoffs_left_ == 0) {
                end_phase(Phase::kDissemination);
                begin_phase(Phase::kVsa);
                start_vsa();
              }
            },
            config_.wire.lbi, 0.0, kTagDissemination);
      },
      nullptr);
}

void ProtocolRound::start_vsa() {
  // Each touched KT node fires once its last input arrives: entry records
  // for leaves, children's forwarded leftovers for interior nodes.
  for (const auto& [leaf, records] : entries_.heavy)
    vsa_waits_[leaf] += records.size();
  for (const auto& [leaf, records] : entries_.light)
    vsa_waits_[leaf] += records.size();
  for (const auto& [i, node_trace] : trace_)
    if (node_trace.forwarded_up > 0)
      vsa_waits_[tree_.node(i).parent] += node_trace.forwarded_up;

  for (const auto& [leaf, records] : entries_.heavy)
    for (const ShedCandidate& r : records)
      vsa_send(node_ep_[r.from], host_ep_[leaf], config_.wire.record,
               [this, leaf = leaf] { vsa_record_arrival(leaf); });
  for (const auto& [leaf, records] : entries_.light)
    for (const SpareCapacity& r : records)
      vsa_send(node_ep_[r.node], host_ep_[leaf], config_.wire.record,
               [this, leaf = leaf] { vsa_record_arrival(leaf); });

  if (vsa_outstanding_ == 0) finish_vsa();  // no records at all
}

void ProtocolRound::vsa_send(sim::Endpoint from, sim::Endpoint to,
                             double bytes, std::function<void()> on_receive) {
  ++vsa_outstanding_;
  net_.send(
      from, to,
      [this, fn = std::move(on_receive)] {
        // Process before decrementing: follow-up sends keep the phase
        // alive, so outstanding hits zero only at the true end.
        if (fn) fn();
        P2PLB_ASSERT(vsa_outstanding_ > 0);
        if (--vsa_outstanding_ == 0) finish_vsa();
      },
      bytes, 0.0, kTagVsa);
}

void ProtocolRound::vsa_record_arrival(ktree::KtIndex node) {
  P2PLB_ASSERT(vsa_waits_[node] > 0);
  if (--vsa_waits_[node] == 0) vsa_process(node);
}

void ProtocolRound::vsa_process(ktree::KtIndex node) {
  const double phase_now = net_.engine().now() - metrics(Phase::kVsa).start;
  const auto it = trace_.find(node);
  const VsaNodeTrace* node_trace =
      it == trace_.end() ? nullptr : &it->second;

  // Rendezvous: re-stamp the precomputed pairings with the simulated time
  // they fired, then notify both endpoints of each pair.
  if (node_trace != nullptr) {
    for (const std::uint32_t idx : node_trace->assignments) {
      Assignment& a = report_.vsa.assignments[idx];
      a.available_at = phase_now;
      // The match is a DAG node between the last-arriving record and the
      // pair notifications: scope it so the notify sends parent to it.
      obs::SpanContext match_ctx = net_.current_context();
      if (obs::Tracer* tr = net_.tracer()) {
        match_ctx = tr->child_of(match_ctx);
        tr->instant(net_.engine().now(), kTagVsa, "vsa.match", match_ctx,
                    {obs::arg("vs", a.vs), obs::arg("from", a.from),
                     obs::arg("to", a.to), obs::arg("load", a.load),
                     obs::arg("depth", a.rendezvous_depth)});
      }
      const sim::Network::ContextScope scope(net_, match_ctx);
      obs::Profiler* const prof = net_.profiler();
      const obs::Profiler::Scope prof_scope(
          prof, prof != nullptr ? prof->intern("vsa.match", "lb") : 0);
      vsa_send(host_ep_[node], node_ep_[a.from], config_.wire.notify,
               [this, idx] { begin_transfer(idx); });
      vsa_send(host_ep_[node], node_ep_[a.to], config_.wire.notify,
               nullptr);
    }
  }

  const std::uint32_t forwarded =
      node_trace == nullptr ? 0 : node_trace->forwarded_up;
  if (node == tree_.root() || forwarded == 0) {
    // The record flow ends here: the sweep is done once the last such
    // terminus has fired.
    report_.vsa.sweep_completion_time =
        std::max(report_.vsa.sweep_completion_time, phase_now);
  }
  if (node == tree_.root()) return;
  const ktree::KtIndex parent = tree_.node(node).parent;
  for (std::uint32_t r = 0; r < forwarded; ++r)
    vsa_send(host_ep_[node], host_ep_[parent], config_.wire.record,
             [this, parent] { vsa_record_arrival(parent); });
}

void ProtocolRound::finish_vsa() {
  if (vsa_done_) return;
  vsa_done_ = true;
  end_phase(Phase::kVsa);
  maybe_finish();
}

void ProtocolRound::begin_transfer(std::size_t assignment_index) {
  if (!config_.balancer.apply_transfers) return;
  if (!transfer_started_) {
    transfer_started_ = true;
    begin_phase(Phase::kTransfer);
  }
  const Assignment& a = report_.vsa.assignments[assignment_index];
  ++transfers_outstanding_;
  const double distance = net_.latency_between(node_ep_[a.from],
                                               node_ep_[a.to]);
  registry_
      ->histogram("lb.transfer_distance", {0, 1, 2, 4, 8, 16, 32, 64, 128})
      .observe(distance, a.load);
  if (obs::Tracer* tr = net_.tracer()) {
    // Child of the notify delivery that triggered this transfer.
    transfer_ctx_[assignment_index] = tr->child_of(net_.current_context());
    tr->async_begin(net_.engine().now(), kTagTransfer, "transfer",
                    assignment_index + 1, transfer_ctx_[assignment_index],
                    {obs::arg("vs", a.vs), obs::arg("from", a.from),
                     obs::arg("to", a.to), obs::arg("load", a.load)});
  }
  // The payload message is a child of the transfer span (zero -- and
  // unused -- when untraced).
  const sim::Network::ContextScope scope(net_, transfer_ctx_[assignment_index]);
  obs::Profiler* const prof = net_.profiler();
  const obs::Profiler::Scope prof_scope(
      prof, prof != nullptr ? prof->intern("transfer", "lb") : 0);
  net_.send(
      node_ep_[a.from], node_ep_[a.to],
      [this, assignment_index] {
        // Applied at delivery time against the *live* ring: a server that
        // vanished or a destination that died is skipped (lazy protocol).
        const Assignment& done = report_.vsa.assignments[assignment_index];
        const std::size_t applied =
            apply_assignments(ring_, std::span<const Assignment>(&done, 1));
        report_.transfers_applied += applied;
        if (applied > 0)
          registry_->counter("lb.load_moved").add(done.load);
        if (obs::Tracer* tr = net_.tracer())
          tr->async_end(net_.engine().now(), kTagTransfer, "transfer",
                        assignment_index + 1, transfer_ctx_[assignment_index],
                        {obs::arg("applied", applied > 0)});
        P2PLB_ASSERT(transfers_outstanding_ > 0);
        --transfers_outstanding_;
        end_phase(Phase::kTransfer);  // re-stamped per delivery: last wins
        maybe_finish();
      },
      config_.wire.transfer_per_load * a.load, 0.0, kTagTransfer);
}

void ProtocolRound::maybe_finish() {
  if (done_ || !vsa_done_ || transfers_outstanding_ > 0) return;
  const double now = net_.engine().now();
  if (!transfer_started_) {
    // Nothing to move (or apply_transfers off): an empty, instant phase.
    PhaseMetrics& m = metrics(Phase::kTransfer);
    m.start = m.end = now;
  }
  report_.after = classify_all(ring_, report_.system, config_.balancer.epsilon);
  report_.completion_time = now - t0_;

  // Single source of truth for traffic: the analytic counters the oracle
  // pipeline computed must equal what actually crossed the network, and
  // the report carries the measured values.
  P2PLB_ASSERT_MSG(report_.aggregation.messages ==
                       metrics(Phase::kAggregation).messages,
                   "analytic aggregation count diverged from network");
  P2PLB_ASSERT_MSG(report_.dissemination.messages ==
                       metrics(Phase::kDissemination).messages,
                   "analytic dissemination count diverged from network");
  P2PLB_ASSERT_MSG(report_.vsa.messages == metrics(Phase::kVsa).messages,
                   "analytic VSA count diverged from network");
  report_.aggregation.messages = metrics(Phase::kAggregation).messages;
  report_.dissemination.messages = metrics(Phase::kDissemination).messages;
  report_.vsa.messages = metrics(Phase::kVsa).messages;

  // Round outcomes land in the registry next to the traffic counters.
  const std::size_t planned = report_.vsa.assignments.size();
  registry_->counter("lb.rounds").increment();
  registry_->counter("lb.transfers_planned")
      .add(static_cast<double>(planned));
  registry_->counter("lb.transfers_applied")
      .add(static_cast<double>(report_.transfers_applied));
  registry_->counter("lb.transfers_skipped")
      .add(static_cast<double>(planned - report_.transfers_applied));

  if (obs::Tracer* tr = net_.tracer()) {
    if (transfer_started_)
      tr->end(now, kTagTransfer, phase_name(Phase::kTransfer),
              phase_ctx_[static_cast<std::size_t>(Phase::kTransfer)],
              {obs::arg("messages", metrics(Phase::kTransfer).messages),
               obs::arg("applied", report_.transfers_applied)});
    tr->end(now, "lb.round", "round", round_ctx_,
            {obs::arg("transfers_applied", report_.transfers_applied),
             obs::arg("completion_time", report_.completion_time)});
  }

  done_ = true;
  if (on_complete_) on_complete_(report_);
}

}  // namespace p2plb::lb
