// Proximity pipeline glue (Sections 4.1 and 4.2).
//
// Ties the pieces together: select landmarks in the topology, compute
// every DHT node's landmark vector from its attachment vertex, quantize
// into the Hilbert grid, and emit one Hilbert-derived DHT key per node.
// Feed the resulting keys to run_balance_round with kProximityAware.
#pragma once

#include <vector>

#include "chord/ring.h"
#include "common/rng.h"
#include "hilbert/grid.h"
#include "topo/landmarks.h"

namespace p2plb::lb {

/// Knobs of the proximity mapping (defaults follow the paper: m = 15
/// landmarks; a coarse grid so same-stub-domain nodes share a number).
struct ProximityConfig {
  std::size_t landmark_count = 15;
  std::uint32_t bits_per_dimension = 2;  ///< the paper's `n` knob
  /// Landmarks "chosen from the overlay itself" (Section 4.1): random
  /// stub vertices.  kTransitSpread models landmarks placed in the core.
  topo::LandmarkStrategy strategy = topo::LandmarkStrategy::kRandomStub;
  /// Subtract each vector's own mean before quantization (each node does
  /// this locally).  A node's distance-to-gateway adds the same scalar
  /// to every coordinate; that diagonal offset carries no cross-domain
  /// information but splits same-domain nodes across grid cells.
  /// Centering removes it.  bench/ablation_proximity toggles this.
  bool center_vectors = true;
};

/// The computed mapping.
struct ProximityMap {
  /// node_keys[i] = Hilbert-derived DHT key of ring node i.
  std::vector<chord::Key> node_keys;
  /// Raw Hilbert numbers (before key scaling), for diagnostics.
  std::vector<hilbert::Index> hilbert_numbers;
  /// The selected landmark vertices.
  std::vector<topo::Vertex> landmarks;
};

/// Build the proximity map for every node of the ring.  Every ring node
/// must be attached to a vertex of `topology`.
[[nodiscard]] ProximityMap build_proximity_map(
    const chord::Ring& ring, const topo::TransitStubTopology& topology,
    const ProximityConfig& config, Rng& rng);

/// Clustering quality of a proximity map (Section 4.1: "a sufficient
/// number of landmark nodes need to be used to reduce the probability of
/// false clustering where nodes that are physically far away have
/// similar landmark vectors").
struct ClusteringQuality {
  /// Node pairs sampled that share a Hilbert number.
  std::size_t same_number_pairs = 0;
  /// Fraction of those pairs whose physical distance exceeds the radius:
  /// the paper's false-clustering probability.
  double false_clustering_rate = 0.0;
  /// Mean physical distance of same-number pairs vs random pairs; the
  /// ratio is the discrimination power of the mapping.
  double mean_same_number_distance = 0.0;
  double mean_random_distance = 0.0;
};

/// Sample up to `sample_pairs` same-Hilbert-number node pairs (and as
/// many random pairs) and measure their physical distances.
/// `near_radius` defines "physically close" (the paper's intent: within
/// a couple of intradomain hops).
[[nodiscard]] ClusteringQuality measure_clustering_quality(
    const chord::Ring& ring, const topo::TransitStubTopology& topology,
    const ProximityMap& map, double near_radius, std::size_t sample_pairs,
    Rng& rng);

}  // namespace p2plb::lb
