#include "lb/classify.h"

#include "common/error.h"

namespace p2plb::lb {

NodeAssessment classify_node(const chord::Ring& ring, chord::NodeIndex node,
                             const Lbi& system, double epsilon) {
  P2PLB_REQUIRE(epsilon >= 0.0);
  P2PLB_REQUIRE_MSG(system.capacity > 0.0,
                    "system capacity must be positive to classify");
  NodeAssessment a;
  a.node = node;
  a.load = ring.node_load(node);
  a.capacity = ring.node(node).capacity;
  a.target = (1.0 + epsilon) * (system.load / system.capacity) * a.capacity;
  a.delta = a.target - a.load;
  if (a.load > a.target) {
    a.cls = NodeClass::kHeavy;
  } else if (a.delta >= system.min_load) {
    a.cls = NodeClass::kLight;
  } else {
    a.cls = NodeClass::kNeutral;
  }
  return a;
}

Classification classify_all(const chord::Ring& ring, const Lbi& system,
                            double epsilon) {
  Classification out;
  for (const chord::NodeIndex i : ring.live_nodes()) {
    out.nodes.push_back(classify_node(ring, i, system, epsilon));
    switch (out.nodes.back().cls) {
      case NodeClass::kHeavy:
        ++out.heavy_count;
        break;
      case NodeClass::kLight:
        ++out.light_count;
        break;
      case NodeClass::kNeutral:
        ++out.neutral_count;
        break;
    }
  }
  return out;
}

}  // namespace p2plb::lb
