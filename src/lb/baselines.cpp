#include "lb/baselines.h"

#include <algorithm>
#include <set>

#include "common/error.h"
#include "lb/lbi.h"
#include "lb/selection.h"

namespace p2plb::lb {

namespace {

/// Baselines are granted free, exact global knowledge of <L, C, L_min>
/// each round (no aggregation cost) -- a strictly generous assumption
/// that biases comparisons *against* the paper's scheme.
Classification classify_now(const chord::Ring& ring, double epsilon) {
  return classify_all(ring, ground_truth_lbi(ring), epsilon);
}

}  // namespace

CfsShedResult run_cfs_shedding(chord::Ring& ring, double epsilon,
                               std::uint32_t max_rounds) {
  CfsShedResult result;
  for (std::uint32_t round = 0; round < max_rounds; ++round) {
    const Classification before = classify_now(ring, epsilon);
    if (before.heavy_count == 0) break;
    ++result.rounds;
    std::set<chord::NodeIndex> heavy_at_start;
    for (const NodeAssessment& a : before.nodes)
      if (a.cls == NodeClass::kHeavy) heavy_at_start.insert(a.node);

    bool any_shed = false;
    for (const NodeAssessment& a : before.nodes) {
      if (a.cls != NodeClass::kHeavy) continue;
      // Delete lightest servers until at/below target; never delete the
      // last server (the node would leave the system).
      std::vector<chord::Key> servers = ring.node(a.node).servers;
      std::sort(servers.begin(), servers.end(),
                [&](chord::Key x, chord::Key y) {
                  return ring.server_load(x) < ring.server_load(y);
                });
      double load = ring.node_load(a.node);
      for (const chord::Key vs : servers) {
        if (load <= a.target) break;
        if (ring.node(a.node).servers.size() <= 1) break;
        const double shed_load = ring.server_load(vs);
        ring.remove_virtual_server(vs);
        // The arc joins the ring successor of the deleted id, and so
        // does the load it carried.
        const chord::VirtualServer& absorber = ring.successor(vs);
        ring.set_load(absorber.id, absorber.load + shed_load);
        load -= shed_load;
        result.load_moved += shed_load;
        ++result.servers_shed;
        any_shed = true;
      }
    }
    if (!any_shed) break;  // stuck: every heavy is down to one server

    // Thrash: nodes that were not heavy this round but are heavy now.
    const Classification after = classify_now(ring, epsilon);
    for (const NodeAssessment& a : after.nodes)
      if (a.cls == NodeClass::kHeavy && !heavy_at_start.contains(a.node))
        ++result.thrash_events;
  }
  result.residual_heavy = classify_now(ring, epsilon).heavy_count;
  return result;
}

OneToOneResult run_one_to_one(chord::Ring& ring, double epsilon, Rng& rng,
                              std::uint32_t max_rounds,
                              std::uint32_t probes_per_round) {
  P2PLB_REQUIRE(probes_per_round >= 1);
  OneToOneResult result;
  for (std::uint32_t round = 0; round < max_rounds; ++round) {
    const Classification c = classify_now(ring, epsilon);
    if (c.heavy_count == 0) break;
    ++result.rounds;
    // Mutable per-round view of loads and classes.
    std::vector<NodeAssessment> nodes = c.nodes;
    std::vector<std::size_t> order(nodes.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    rng.shuffle(order);

    bool any_transfer = false;
    for (const std::size_t idx : order) {
      NodeAssessment& light = nodes[idx];
      if (light.cls != NodeClass::kLight) continue;
      double spare = light.target - light.load;
      for (std::uint32_t p = 0; p < probes_per_round; ++p) {
        ++result.probes;
        const auto probe_key = static_cast<chord::Key>(rng() >> 32);
        const chord::NodeIndex owner = ring.successor(probe_key).owner;
        NodeAssessment* heavy = nullptr;
        for (auto& n : nodes)
          if (n.node == owner) {
            heavy = &n;
            break;
          }
        if (heavy == nullptr || heavy->cls != NodeClass::kHeavy) continue;
        // Move the heaviest server that fits the light node's spare.
        chord::Key best = 0;
        double best_load = -1.0;
        for (const chord::Key vs : ring.node(owner).servers) {
          const double l = ring.server_load(vs);
          if (l <= spare && l > best_load) {
            best = vs;
            best_load = l;
          }
        }
        if (best_load <= 0.0) continue;  // nothing fits (or empty server)
        ring.transfer_virtual_server(best, light.node);
        result.assignments.push_back(
            {best, owner, light.node, best_load, 0});
        result.load_moved += best_load;
        ++result.transfers;
        any_transfer = true;
        // Update the local view.
        heavy->load -= best_load;
        if (heavy->load <= heavy->target) heavy->cls = NodeClass::kNeutral;
        light.load += best_load;
        spare -= best_load;
        break;  // this light node is served this round
      }
    }
    if (!any_transfer) break;  // probing no longer finds placeable load
  }
  result.residual_heavy = classify_now(ring, epsilon).heavy_count;
  return result;
}

OneToManyResult run_one_to_many(chord::Ring& ring, double epsilon, Rng& rng,
                                std::size_t directory_count,
                                std::uint32_t max_rounds) {
  P2PLB_REQUIRE(directory_count >= 1);
  OneToManyResult result;
  for (std::uint32_t round = 0; round < max_rounds; ++round) {
    const Classification c = classify_now(ring, epsilon);
    if (c.heavy_count == 0) break;
    ++result.rounds;

    // Lights register their spare with one random directory each.
    std::vector<std::multimap<double, chord::NodeIndex>> directories(
        directory_count);
    for (const NodeAssessment& a : c.nodes) {
      if (a.cls != NodeClass::kLight) continue;
      directories[rng.below(directory_count)].emplace(a.delta, a.node);
      ++result.messages;  // registration
    }

    bool any_transfer = false;
    for (const NodeAssessment& a : c.nodes) {
      if (a.cls != NodeClass::kHeavy) continue;
      auto& directory = directories[rng.below(directory_count)];
      ++result.messages;  // query
      const double excess = a.load - a.target;
      // Best-fit the heavy's shed candidates against this directory's
      // registrations (heaviest candidate first, as the tree does).
      auto shed = select_servers_to_shed(ring, a.node, excess);
      std::sort(shed.begin(), shed.end(),
                [&](chord::Key x, chord::Key y) {
                  return ring.server_load(x) > ring.server_load(y);
                });
      for (const chord::Key vs : shed) {
        const double load = ring.server_load(vs);
        const auto it = directory.lower_bound(load);
        if (it == directory.end()) continue;
        const chord::NodeIndex dest = it->second;
        const double spare = it->first;
        directory.erase(it);
        ring.transfer_virtual_server(vs, dest);
        result.assignments.push_back({vs, a.node, dest, load, 0});
        result.load_moved += load;
        ++result.transfers;
        result.messages += 2;  // notify both ends
        any_transfer = true;
        if (spare - load > 0.0)
          directory.emplace(spare - load, dest);
      }
    }
    if (!any_transfer) break;
  }
  result.residual_heavy = classify_now(ring, epsilon).heavy_count;
  return result;
}

}  // namespace p2plb::lb
