#include "lb/vst.h"

#include "common/error.h"

namespace p2plb::lb {

std::size_t apply_assignments(chord::Ring& ring,
                              std::span<const Assignment> assignments) {
  std::size_t applied = 0;
  for (const Assignment& a : assignments) {
    if (!ring.has_server(a.vs)) continue;
    if (ring.server_owner(a.vs) != a.from) continue;  // already moved
    if (!ring.node(a.to).alive) continue;
    ring.transfer_virtual_server(a.vs, a.to);
    ++applied;
  }
  return applied;
}

std::vector<Transfer> transfer_costs(const chord::Ring& ring,
                                     std::span<const Assignment> assignments,
                                     topo::DistanceOracle& oracle) {
  // Batch by source: one Dijkstra per distinct source attachment.
  std::vector<std::pair<topo::Vertex, topo::Vertex>> pairs;
  pairs.reserve(assignments.size());
  for (const Assignment& a : assignments) {
    const std::uint32_t from_at = ring.node(a.from).attachment;
    const std::uint32_t to_at = ring.node(a.to).attachment;
    P2PLB_REQUIRE_MSG(from_at != chord::Node::kNoAttachment &&
                          to_at != chord::Node::kNoAttachment,
                      "transfer cost needs topology attachments");
    pairs.emplace_back(from_at, to_at);
  }
  const std::vector<double> distances = oracle.distances(pairs);
  std::vector<Transfer> out;
  out.reserve(assignments.size());
  for (std::size_t i = 0; i < assignments.size(); ++i)
    out.push_back({assignments[i], distances[i]});
  return out;
}

}  // namespace p2plb::lb
