// Continuous LBI aggregation over the self-repairing tree (Section 3.2's
// resilience claim).
//
// The paper: "In the event of the crashing of DHT nodes during the
// process of LBI aggregation ... the K-nary tree can recover in
// O(log_K N) time.  Hence, the LBI process can continue along the
// K-nary tree in a bottom-up sweep after the tree is reconstructed."
//
// This module implements aggregation the way a soft-state system
// actually runs it: every KT-node instance keeps a cached summary of its
// subtree and refreshes it periodically -- a leaf recomputes its local
// contribution, an interior node pulls its live children's caches.  The
// root's cache therefore converges to the true system triple within
// (height x interval) and *re*-converges after any crash once the
// maintenance protocol has regrown the lost instances.  No sweep ever
// has to restart from scratch; staleness is bounded, not fatal.
#pragma once

#include <map>

#include "ktree/protocol.h"
#include "lb/lbi.h"
#include "obs/metrics.h"

namespace p2plb::lb {

/// Soft-state aggregation daemon attached to a MaintenanceProtocol tree.
class ContinuousLbi {
 public:
  /// `engine`, `ring` and `tree` must outlive this object; `interval` is
  /// the refresh period T of Section 3.2 (> 0).  When `metrics` is given
  /// (and outlives this object), the daemon accounts its refresh traffic
  /// as the counter `clbi.refresh_msgs` and its current root accuracy as
  /// the gauge `clbi.root_error` (see root_relative_error), so the
  /// aggregator's cost and staleness show up in the unified registry next
  /// to everything else.
  ContinuousLbi(sim::Engine& engine, const chord::Ring& ring,
                const ktree::MaintenanceProtocol& tree, sim::Time interval,
                ktree::VsLatencyFn latency,
                obs::MetricsRegistry* metrics = nullptr);

  /// Start the periodic refresh.
  void start();

  /// The root's current (possibly stale) view of <L, C, L_min>.
  [[nodiscard]] Lbi root_estimate() const;

  /// True iff the root estimate matches the ring's ground truth within a
  /// relative tolerance on L and C (and exactly on L_min).
  [[nodiscard]] bool root_is_accurate(double relative_tolerance) const;

  /// Worst per-component relative error of the root estimate against the
  /// ring's ground truth (the quantity root_is_accurate thresholds):
  /// max over <L, C, L_min> of |est - truth| / max(|est|, |truth|, 1e-12).
  /// An empty cache reads as a root estimate of all zeros.
  [[nodiscard]] double root_relative_error() const;

  /// Simulated time of the most recent refresh sweep, or a negative value
  /// before the first one -- the root estimate's staleness is
  /// `now - last_refresh_time()`.
  [[nodiscard]] sim::Time last_refresh_time() const noexcept {
    return last_refresh_;
  }

  /// Refresh messages sent to remote children so far.
  [[nodiscard]] std::uint64_t messages() const noexcept { return messages_; }

 private:
  void refresh_all();
  [[nodiscard]] Lbi local_contribution(const ktree::Region& region) const;

  sim::Engine& engine_;
  const chord::Ring& ring_;
  const ktree::MaintenanceProtocol& tree_;
  sim::Time interval_;
  ktree::VsLatencyFn latency_;
  obs::MetricsRegistry* metrics_ = nullptr;
  /// Cached subtree summaries, keyed like the protocol's instances.
  std::map<ktree::Region, Lbi, ktree::RegionOrder> cache_;
  std::uint64_t messages_ = 0;
  sim::Time last_refresh_ = -1.0;
};

}  // namespace p2plb::lb
