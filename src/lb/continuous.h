// Continuous LBI aggregation over the self-repairing tree (Section 3.2's
// resilience claim).
//
// The paper: "In the event of the crashing of DHT nodes during the
// process of LBI aggregation ... the K-nary tree can recover in
// O(log_K N) time.  Hence, the LBI process can continue along the
// K-nary tree in a bottom-up sweep after the tree is reconstructed."
//
// This module implements aggregation the way a soft-state system
// actually runs it: every KT-node instance keeps a cached summary of its
// subtree and refreshes it periodically -- a leaf recomputes its local
// contribution, an interior node pulls its live children's caches.  The
// root's cache therefore converges to the true system triple within
// (height x interval) and *re*-converges after any crash once the
// maintenance protocol has regrown the lost instances.  No sweep ever
// has to restart from scratch; staleness is bounded, not fatal.
#pragma once

#include <map>

#include "ktree/protocol.h"
#include "lb/lbi.h"

namespace p2plb::lb {

/// Soft-state aggregation daemon attached to a MaintenanceProtocol tree.
class ContinuousLbi {
 public:
  /// `engine`, `ring` and `tree` must outlive this object; `interval` is
  /// the refresh period T of Section 3.2 (> 0).
  ContinuousLbi(sim::Engine& engine, const chord::Ring& ring,
                const ktree::MaintenanceProtocol& tree, sim::Time interval,
                ktree::VsLatencyFn latency);

  /// Start the periodic refresh.
  void start();

  /// The root's current (possibly stale) view of <L, C, L_min>.
  [[nodiscard]] Lbi root_estimate() const;

  /// True iff the root estimate matches the ring's ground truth within a
  /// relative tolerance on L and C (and exactly on L_min).
  [[nodiscard]] bool root_is_accurate(double relative_tolerance) const;

  /// Refresh messages sent to remote children so far.
  [[nodiscard]] std::uint64_t messages() const noexcept { return messages_; }

 private:
  void refresh_all();
  [[nodiscard]] Lbi local_contribution(const ktree::Region& region) const;

  sim::Engine& engine_;
  const chord::Ring& ring_;
  const ktree::MaintenanceProtocol& tree_;
  sim::Time interval_;
  ktree::VsLatencyFn latency_;
  /// Cached subtree summaries, keyed like the protocol's instances.
  std::map<ktree::Region, Lbi, ktree::RegionOrder> cache_;
  std::uint64_t messages_ = 0;
};

}  // namespace p2plb::lb
