#include "lb/selection.h"

#include <algorithm>
#include <bit>
#include <limits>
#include <numeric>

#include "common/error.h"

namespace p2plb::lb {

namespace {

struct Item {
  chord::Key id;
  double load;
};

std::vector<chord::Key> exact_select(const std::vector<Item>& items,
                                     double excess) {
  // Enumerate all subsets; pick the feasible one with the smallest sum,
  // breaking ties toward fewer servers (fewer leave/join operations).
  const std::size_t n = items.size();
  P2PLB_ASSERT(n <= kExactLimit);
  const std::uint32_t subsets = 1u << n;
  double best_sum = std::numeric_limits<double>::infinity();
  int best_popcount = 0;
  std::uint32_t best_mask = 0;
  bool found = false;
  for (std::uint32_t mask = 1; mask < subsets; ++mask) {
    double sum = 0.0;
    for (std::size_t k = 0; k < n; ++k)
      if (mask & (1u << k)) sum += items[k].load;
    if (sum + 1e-12 < excess) continue;  // infeasible
    const int pc = std::popcount(mask);
    if (!found || sum < best_sum ||
        (sum == best_sum && pc < best_popcount)) {
      found = true;
      best_sum = sum;
      best_mask = mask;
      best_popcount = pc;
    }
  }
  std::vector<chord::Key> out;
  if (!found) {  // excess exceeds total load: shed everything
    for (const Item& it : items) out.push_back(it.id);
    return out;
  }
  for (std::size_t k = 0; k < n; ++k)
    if (best_mask & (1u << k)) out.push_back(items[k].id);
  return out;
}

std::vector<chord::Key> greedy_select(std::vector<Item> items, double excess) {
  std::sort(items.begin(), items.end(),
            [](const Item& a, const Item& b) { return a.load < b.load; });
  // Candidate A: ascending-load prefix until the excess is covered.
  std::vector<chord::Key> prefix;
  double prefix_sum = 0.0;
  for (const Item& it : items) {
    if (prefix_sum >= excess) break;
    prefix.push_back(it.id);
    prefix_sum += it.load;
  }
  // Candidate B: the single lightest server that alone covers the excess.
  const auto single = std::find_if(
      items.begin(), items.end(),
      [excess](const Item& it) { return it.load >= excess; });
  if (single != items.end() &&
      (prefix_sum < excess || single->load < prefix_sum)) {
    return {single->id};
  }
  return prefix;
}

}  // namespace

std::vector<chord::Key> select_servers_to_shed(const chord::Ring& ring,
                                               chord::NodeIndex node,
                                               double excess,
                                               SelectionPolicy policy) {
  P2PLB_REQUIRE_MSG(excess > 0.0, "only heavy nodes shed servers");
  const chord::Node& n = ring.node(node);
  if (n.servers.empty()) return {};
  std::vector<Item> items;
  items.reserve(n.servers.size());
  for (const chord::Key id : n.servers)
    items.push_back({id, ring.server_load(id)});

  if (policy == SelectionPolicy::kExact && items.size() <= kExactLimit)
    return exact_select(items, excess);
  return greedy_select(std::move(items), excess);
}

double total_load_of(const chord::Ring& ring,
                     const std::vector<chord::Key>& servers) {
  double total = 0.0;
  for (const chord::Key id : servers) total += ring.server_load(id);
  return total;
}

}  // namespace p2plb::lb
