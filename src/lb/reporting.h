// VSA record publication: where heavy/light records enter the tree.
//
// Proximity-ignorant (Section 3.4): a node reports through one of its own
// randomly chosen virtual servers, so its records enter the tree at a
// leaf determined by its (random) position in the identifier space.
//
// Proximity-aware (Section 4.3): a node publishes its records into the
// DHT with its Hilbert number as the key; the records enter the tree at
// the leaf owning that key, so physically close nodes' records meet low
// in the tree.
#pragma once

#include <span>
#include <unordered_map>

#include "common/rng.h"
#include "ktree/tree.h"
#include "lb/classify.h"
#include "lb/selection.h"
#include "lb/vsa.h"

namespace p2plb::lb {

/// Build entries for the proximity-ignorant scheme.  `reporter_vs` (from
/// the LBI sweep) supplies each node's random reporting VS; nodes missing
/// from it (e.g. hosting no servers) cannot report and are skipped.
[[nodiscard]] VsaEntries build_entries_ignorant(
    const ktree::KTree& tree, const Classification& classification,
    const std::unordered_map<chord::NodeIndex, chord::Key>& reporter_vs,
    SelectionPolicy policy = SelectionPolicy::kExact);

/// Build entries for the proximity-aware scheme.  `node_keys[i]` is the
/// Hilbert-derived DHT key of node i (indexed by NodeIndex; it must cover
/// every node mentioned by the classification).
[[nodiscard]] VsaEntries build_entries_proximity(
    const ktree::KTree& tree, const Classification& classification,
    std::span<const chord::Key> node_keys,
    SelectionPolicy policy = SelectionPolicy::kExact);

}  // namespace p2plb::lb
