// Baseline load-balancing schemes the paper positions itself against
// (Sections 1.1 and 6).
//
//   * CFS-style shedding [CFS, SOSP'01]: an overloaded node simply
//     *deletes* virtual servers; their arcs (and load) are absorbed by
//     the ring successors, which can overload *them* -- the "load
//     thrashing" failure mode the paper cites.
//   * Rao et al. one-to-one [IPTPS'03]: each light node probes random
//     points of the identifier space; when a probe lands on a heavy
//     node, one virtual server moves directly.  Simple and fully
//     decentralized, but needs many probes and is proximity-blind.
//   * Rao et al. many-to-many is equivalent to running the K-nary-tree
//     VSA with an infinite rendezvous threshold (all records pair at one
//     directory); bench/baseline_comparison configures the main balancer
//     that way rather than duplicating code here.
#pragma once

#include <cstdint>
#include <vector>

#include "chord/ring.h"
#include "common/rng.h"
#include "lb/classify.h"
#include "lb/vsa.h"

namespace p2plb::lb {

/// Outcome of a CFS-style shedding run.
struct CfsShedResult {
  /// Rounds executed (classification + shed per round).
  std::uint32_t rounds = 0;
  /// Virtual servers deleted across all rounds.
  std::size_t servers_shed = 0;
  /// Load absorbed by successors (== load shed).
  double load_moved = 0.0;
  /// Nodes that were not heavy at the start of some round but became
  /// heavy by absorbing a shed arc -- the thrashing measure.
  std::size_t thrash_events = 0;
  /// Heavy nodes remaining after the final round.
  std::size_t residual_heavy = 0;
};

/// Run CFS-style shedding until no node is heavy, a node would have to
/// delete its last server, or `max_rounds` elapse.  Shedding deletes the
/// node's lightest servers first (smallest disruption per round, as CFS
/// does); each deleted server's load joins its successor server.
/// The ring is modified in place.
CfsShedResult run_cfs_shedding(chord::Ring& ring, double epsilon,
                               std::uint32_t max_rounds = 32);

/// Outcome of the one-to-one random-probing scheme.
struct OneToOneResult {
  std::uint32_t rounds = 0;
  std::uint64_t probes = 0;        ///< random lookups performed
  std::size_t transfers = 0;       ///< virtual servers moved
  double load_moved = 0.0;
  std::size_t residual_heavy = 0;
  /// The (from, to, load) triples, for transfer-cost accounting.
  std::vector<Assignment> assignments;
};

/// Run one-to-one probing: each round, every light node probes
/// `probes_per_round` random identifiers; if the owning node is heavy,
/// the heaviest virtual server that fits the light node's spare moves.
/// Stops when no node is heavy or after `max_rounds`.
OneToOneResult run_one_to_one(chord::Ring& ring, double epsilon, Rng& rng,
                              std::uint32_t max_rounds = 64,
                              std::uint32_t probes_per_round = 4);

/// Outcome of the one-to-many directory scheme.
struct OneToManyResult {
  std::uint32_t rounds = 0;
  std::uint64_t messages = 0;  ///< registrations + queries + notifications
  std::size_t transfers = 0;
  double load_moved = 0.0;
  std::size_t residual_heavy = 0;
  std::vector<Assignment> assignments;
};

/// Run one-to-many (Rao et al.'s middle scheme): `directory_count`
/// directories each hold the registrations of a random subset of light
/// nodes; every heavy node contacts one random directory per round,
/// which best-fit-matches the heavy's shed candidates against its own
/// registrations only.  Stops when no node is heavy, nothing moved in a
/// round, or after `max_rounds`.
OneToManyResult run_one_to_many(chord::Ring& ring, double epsilon, Rng& rng,
                                std::size_t directory_count = 16,
                                std::uint32_t max_rounds = 16);

}  // namespace p2plb::lb
