// Load Balancing Information (LBI) aggregation and dissemination
// (Section 3.2).
//
// Each DHT node i reports <L_i, C_i, L_i,min> (total load, capacity,
// minimum virtual-server load) through exactly one of its virtual servers
// to exactly one KT leaf; interior KT nodes fold the triples of their K
// children (summing L and C, taking the min of L_min) until the root
// holds the system-wide <L, C, L_min>, which is then disseminated back
// down to every node.  Both sweeps take O(log_K N) rounds.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

#include "chord/ring.h"
#include "common/rng.h"
#include "ktree/tree.h"

namespace p2plb::lb {

/// One node's (or one subtree's) load-balancing information triple.
struct Lbi {
  double load = 0.0;       ///< L: total load of all virtual servers
  double capacity = 0.0;   ///< C: total capacity
  double min_load = std::numeric_limits<double>::infinity();  ///< L_min

  /// Fold another triple into this one (the KT-node aggregation step).
  void merge(const Lbi& other) noexcept {
    load += other.load;
    capacity += other.capacity;
    min_load = std::min(min_load, other.min_load);
  }
};

/// Result of one aggregation sweep.
struct LbiAggregation {
  /// The system-wide triple held by the KT root after the sweep.
  Lbi system;
  /// Number of bottom-up rounds (== tree height + 1): the O(log_K N)
  /// quantity the paper bounds.
  std::uint32_t rounds = 0;
  /// Messages exchanged (leaf reports + child->parent transfers).
  std::uint64_t messages = 0;
  /// Each live node's reporting key, reused by the VSA phase so a node
  /// reports both phases through the same channel.  For a node hosting
  /// servers this is the id of its randomly chosen reporting VS; a node
  /// that currently hosts none (it shed everything) still participates
  /// by publishing at a hashed key -- any DHT node can route a message
  /// to a key owner, it does not need an identity of its own.
  std::unordered_map<chord::NodeIndex, chord::Key> reporter_vs;
};

/// Run one LBI aggregation sweep over the converged tree.
///
/// `rng` picks each node's reporting virtual server (the paper's "randomly
/// chooses one of its virtual servers").  A node hosting no servers (it
/// shed them all in earlier rounds) reports through the leaf covering a
/// hash of its identity instead, so its capacity still counts toward C
/// and it can still volunteer as a transfer destination.
[[nodiscard]] LbiAggregation aggregate_lbi(const ktree::KTree& tree, Rng& rng);

/// Dissemination (Section 3.3): the root triple travels top-down to every
/// leaf and on to every node.  Returns the number of top-down rounds
/// (== tree height + 1) and counts messages.
struct LbiDissemination {
  std::uint32_t rounds = 0;
  std::uint64_t messages = 0;
};
[[nodiscard]] LbiDissemination disseminate_lbi(const ktree::KTree& tree);

/// Ground-truth system triple computed directly from the ring -- the test
/// oracle the tree-based sweep must match exactly.
[[nodiscard]] Lbi ground_truth_lbi(const chord::Ring& ring);

}  // namespace p2plb::lb
