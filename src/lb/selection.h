// Heavy-node virtual-server selection (Section 3.4, first step).
//
// A heavy node i picks the subset of its virtual servers {v_i,1..v_i,m}
// that minimizes the total load moved, subject to the remaining load not
// exceeding its target:  minimize sum(L_i,k)  s.t.  L_i - sum >= excess
// where excess = L_i - T_i.  Equivalently: the minimum-sum subset whose
// load sum is at least the excess.  Moving everything is always feasible,
// so a solution exists whenever the node hosts at least one server.
#pragma once

#include <vector>

#include "chord/ring.h"

namespace p2plb::lb {

/// Which algorithm picks the shed set.
enum class SelectionPolicy : std::uint8_t {
  /// Exact subset enumeration for up to kExactLimit servers, greedy above.
  kExact,
  /// Greedy: best of (ascending-load prefix) and (smallest single server
  /// covering the excess).  Feasible and fast for any server count.
  kGreedy,
};

/// Exact enumeration is used up to this many servers (2^16 subsets).
inline constexpr std::size_t kExactLimit = 16;

/// Choose the servers a heavy node sheds.  `excess` must be positive;
/// returns server ids whose loads sum to >= excess, minimizing that sum
/// (exactly under kExact when feasible, heuristically otherwise).
/// Returns an empty vector when the node hosts no servers.
[[nodiscard]] std::vector<chord::Key> select_servers_to_shed(
    const chord::Ring& ring, chord::NodeIndex node, double excess,
    SelectionPolicy policy = SelectionPolicy::kExact);

/// Total load of the given servers (helper shared with tests).
[[nodiscard]] double total_load_of(const chord::Ring& ring,
                                   const std::vector<chord::Key>& servers);

}  // namespace p2plb::lb
