#include "lb/reporting.h"

#include "common/error.h"

namespace p2plb::lb {

namespace {

/// Shared record construction; `entry_of(assessment)` decides where each
/// node's records enter the tree and under which published key (the only
/// difference between the two schemes).
template <typename EntryOf>
VsaEntries build_entries(const ktree::KTree& tree,
                         const Classification& classification,
                         SelectionPolicy policy, EntryOf&& entry_of) {
  const chord::Ring& ring = tree.ring();
  VsaEntries entries;
  for (const NodeAssessment& a : classification.nodes) {
    if (a.cls == NodeClass::kNeutral) continue;
    ktree::KtIndex leaf = ktree::kNoKtNode;
    chord::Key origin_key = 0;
    if (!entry_of(a, leaf, origin_key)) continue;  // node cannot report
    P2PLB_ASSERT(tree.node(leaf).is_leaf());
    if (a.cls == NodeClass::kHeavy) {
      const double excess = a.load - a.target;
      for (const chord::Key vs :
           select_servers_to_shed(ring, a.node, excess, policy)) {
        entries.heavy[leaf].push_back(
            {ring.server_load(vs), vs, a.node, origin_key});
      }
    } else {
      entries.light[leaf].push_back({a.delta, a.node, origin_key});
    }
  }
  return entries;
}

}  // namespace

VsaEntries build_entries_ignorant(
    const ktree::KTree& tree, const Classification& classification,
    const std::unordered_map<chord::NodeIndex, chord::Key>& reporter_vs,
    SelectionPolicy policy) {
  return build_entries(
      tree, classification, policy,
      [&](const NodeAssessment& a, ktree::KtIndex& leaf,
          chord::Key& origin_key) {
        const auto it = reporter_vs.find(a.node);
        if (it == reporter_vs.end()) return false;
        // Server-less nodes report under a hashed key (see aggregate_lbi);
        // for them the reporting key is not a live VS id.
        leaf = tree.ring().has_server(it->second)
                   ? tree.entry_leaf_for(it->second)
                   : tree.leaf_containing(it->second);
        origin_key = it->second;  // per-node unique: no key-local pairing
        return true;
      });
}

VsaEntries build_entries_proximity(const ktree::KTree& tree,
                                   const Classification& classification,
                                   std::span<const chord::Key> node_keys,
                                   SelectionPolicy policy) {
  return build_entries(
      tree, classification, policy,
      [&](const NodeAssessment& a, ktree::KtIndex& leaf,
          chord::Key& origin_key) {
        P2PLB_REQUIRE_MSG(a.node < node_keys.size(),
                          "missing Hilbert key for node");
        leaf = tree.leaf_containing(node_keys[a.node]);
        origin_key = node_keys[a.node];
        return true;
      });
}

}  // namespace p2plb::lb
