#include "lb/balancer.h"

#include "common/error.h"
#include "lb/protocol_round.h"
#include "sim/engine.h"
#include "sim/network.h"

namespace p2plb::lb {

BalanceReport run_balance_round(chord::Ring& ring,
                                const BalancerConfig& config, Rng& rng,
                                std::span<const chord::Key> node_keys) {
  // The same protocol the timed path runs, on a private network whose
  // every hop is free: the engine drains at t=0, so the report carries
  // real message/byte counts but zero times.
  sim::Engine engine;
  sim::Network net(engine, [](sim::Endpoint, sim::Endpoint) { return 0.0; });
  ProtocolRound round(net, ring, {config, WireModel{}}, rng, node_keys);
  round.start();
  engine.run();
  P2PLB_ASSERT_MSG(round.done(), "zero-latency round did not drain");
  return round.report();
}

}  // namespace p2plb::lb
