#include "lb/balancer.h"

#include "common/error.h"
#include "ktree/tree.h"

namespace p2plb::lb {

BalanceReport run_balance_round(chord::Ring& ring,
                                const BalancerConfig& config, Rng& rng,
                                std::span<const chord::Key> node_keys) {
  P2PLB_REQUIRE(config.epsilon >= 0.0);
  P2PLB_REQUIRE_MSG(
      config.mode == BalanceMode::kProximityIgnorant || !node_keys.empty(),
      "proximity-aware balancing needs per-node Hilbert keys");

  BalanceReport report;
  const ktree::KTree tree(ring, config.tree_degree);

  // Phase 1: aggregate and disseminate <L, C, L_min>.
  report.aggregation = aggregate_lbi(tree, rng);
  report.dissemination = disseminate_lbi(tree);
  report.system = report.aggregation.system;

  // Phase 2: every node classifies itself.
  report.before = classify_all(ring, report.system, config.epsilon);

  // Phase 3: bottom-up VSA sweep.
  const VsaEntries entries =
      config.mode == BalanceMode::kProximityAware
          ? build_entries_proximity(tree, report.before, node_keys,
                                    config.selection)
          : build_entries_ignorant(tree, report.before,
                                   report.aggregation.reporter_vs,
                                   config.selection);
  const VsaParams params{config.rendezvous_threshold, report.system.min_load,
                         config.key_local_rendezvous};
  report.vsa = run_vsa(tree, entries, params);

  // Phase 4: transfer the assigned virtual servers.
  if (config.apply_transfers)
    report.transfers_applied = apply_assignments(ring, report.vsa.assignments);

  report.after = classify_all(ring, report.system, config.epsilon);
  return report;
}

}  // namespace p2plb::lb
