// Virtual Server Transferring (Section 3.5).
//
// Applying an assignment moves the virtual server to its destination node
// (a leave+join pair in a real DHT; here an atomic host change -- the
// ring's arcs are untouched).  Transfer cost is measured as the weighted
// hop distance between the two physical nodes' topology attachments,
// which is what Figures 7 and 8 plot moved load against.
#pragma once

#include <span>
#include <vector>

#include "chord/ring.h"
#include "lb/vsa.h"
#include "topo/distance_oracle.h"

namespace p2plb::lb {

/// Apply the assignments to the ring.  Returns the number of transfers
/// actually performed (an assignment whose VS already moved or whose
/// destination died is skipped, mirroring the lazy protocol).
std::size_t apply_assignments(chord::Ring& ring,
                              std::span<const Assignment> assignments);

/// Per-assignment transfer record for cost accounting.
struct Transfer {
  Assignment assignment;
  /// Weighted hop distance between source and destination attachments.
  double distance = 0.0;
};

/// Compute the physical transfer distance of each assignment.  Every node
/// referenced must carry a topology attachment.
[[nodiscard]] std::vector<Transfer> transfer_costs(
    const chord::Ring& ring, std::span<const Assignment> assignments,
    topo::DistanceOracle& oracle);

}  // namespace p2plb::lb
