#include "lb/proximity.h"

#include <algorithm>
#include <map>
#include <vector>

#include "common/error.h"
#include "topo/distance_oracle.h"

namespace p2plb::lb {

ProximityMap build_proximity_map(const chord::Ring& ring,
                                 const topo::TransitStubTopology& topology,
                                 const ProximityConfig& config, Rng& rng) {
  P2PLB_REQUIRE(config.landmark_count >= 1);
  ProximityMap map;
  map.landmarks = topo::select_landmarks(topology, config.landmark_count,
                                         config.strategy, rng);
  const topo::LandmarkVectors vectors(topology.graph, map.landmarks);
  const hilbert::CurveSpec spec{
      static_cast<std::uint32_t>(config.landmark_count),
      config.bits_per_dimension};
  const hilbert::GridQuantizer quantizer(spec, vectors.max_distance());

  map.node_keys.resize(ring.node_count(), 0);
  map.hilbert_numbers.resize(ring.node_count(), 0);
  const double recenter = vectors.max_distance() / 2.0;

  // Batch path: gather live nodes' vectors into dimension-major columns,
  // then quantize and Hilbert-encode whole columns at once.  Per-point
  // arithmetic (centering order, clamp/scale, curve transform) matches the
  // scalar quantizer/encoder exactly.
  std::vector<chord::NodeIndex> live;
  live.reserve(ring.node_count());
  for (std::size_t i = 0; i < ring.node_count(); ++i) {
    const chord::Node& n = ring.node(static_cast<chord::NodeIndex>(i));
    if (!n.alive) continue;
    P2PLB_REQUIRE_MSG(n.attachment != chord::Node::kNoAttachment,
                      "proximity mapping needs topology attachments");
    P2PLB_REQUIRE(n.attachment < vectors.vertex_count());
    live.push_back(static_cast<chord::NodeIndex>(i));
  }
  const std::size_t dims = vectors.dimension();
  const std::size_t count = live.size();
  std::vector<std::vector<double>> cols(dims, std::vector<double>(count));
  for (std::size_t d = 0; d < dims; ++d) {
    const std::span<const double> row = vectors.row(d);
    for (std::size_t p = 0; p < count; ++p)
      cols[d][p] = row[ring.node(live[p]).attachment];
  }
  if (config.center_vectors) {
    // mean over dimensions (ascending d, like the scalar loop), then the
    // same `value + (recenter - mean)` shift per element.
    std::vector<double> adj(count, 0.0);
    for (std::size_t d = 0; d < dims; ++d)
      for (std::size_t p = 0; p < count; ++p) adj[p] += cols[d][p];
    for (std::size_t p = 0; p < count; ++p)
      adj[p] = recenter - adj[p] / static_cast<double>(dims);
    for (std::size_t d = 0; d < dims; ++d)
      for (std::size_t p = 0; p < count; ++p) cols[d][p] += adj[p];
  }
  std::vector<std::vector<std::uint32_t>> grid(dims);
  for (std::size_t d = 0; d < dims; ++d)
    quantizer.quantize_column(cols[d], grid[d]);
  hilbert::BatchEncoder encoder(spec);
  std::vector<hilbert::Index> numbers;
  encoder.encode(grid, numbers);
  for (std::size_t p = 0; p < count; ++p) {
    map.hilbert_numbers[live[p]] = numbers[p];
    map.node_keys[live[p]] = quantizer.scale_to_key(numbers[p]);
  }
  return map;
}

ClusteringQuality measure_clustering_quality(
    const chord::Ring& ring, const topo::TransitStubTopology& topology,
    const ProximityMap& map, double near_radius, std::size_t sample_pairs,
    Rng& rng) {
  P2PLB_REQUIRE(near_radius >= 0.0);
  P2PLB_REQUIRE(sample_pairs >= 1);
  P2PLB_REQUIRE(map.hilbert_numbers.size() >= ring.node_count());

  // Group live nodes by Hilbert number.
  std::map<hilbert::Index, std::vector<chord::NodeIndex>> groups;
  std::vector<chord::NodeIndex> live;
  for (chord::NodeIndex i = 0; i < ring.node_count(); ++i) {
    if (!ring.node(i).alive) continue;
    live.push_back(i);
    groups[map.hilbert_numbers[i]].push_back(i);
  }
  P2PLB_REQUIRE_MSG(live.size() >= 2, "need at least two live nodes");

  // Sample same-number pairs uniformly over groups with >= 2 members.
  std::vector<const std::vector<chord::NodeIndex>*> multi;
  for (const auto& [number, members] : groups)
    if (members.size() >= 2) multi.push_back(&members);

  ClusteringQuality q;
  topo::DistanceOracle oracle(topology.graph, 64);
  auto attachment = [&](chord::NodeIndex i) {
    const auto at = ring.node(i).attachment;
    P2PLB_REQUIRE_MSG(at != chord::Node::kNoAttachment,
                      "clustering quality needs attachments");
    return at;
  };

  double same_sum = 0.0;
  std::size_t false_pairs = 0;
  if (!multi.empty()) {
    for (std::size_t s = 0; s < sample_pairs; ++s) {
      const auto& members = *multi[rng.below(multi.size())];
      const auto a = members[rng.below(members.size())];
      auto b = a;
      while (b == a) b = members[rng.below(members.size())];
      const double d = oracle.distance(attachment(a), attachment(b));
      same_sum += d;
      if (d > near_radius) ++false_pairs;
      ++q.same_number_pairs;
    }
    q.false_clustering_rate =
        static_cast<double>(false_pairs) /
        static_cast<double>(q.same_number_pairs);
    q.mean_same_number_distance =
        same_sum / static_cast<double>(q.same_number_pairs);
  }

  double random_sum = 0.0;
  for (std::size_t s = 0; s < sample_pairs; ++s) {
    const auto a = live[rng.below(live.size())];
    auto b = a;
    while (b == a) b = live[rng.below(live.size())];
    random_sum += oracle.distance(attachment(a), attachment(b));
  }
  q.mean_random_distance = random_sum / static_cast<double>(sample_pairs);
  return q;
}

}  // namespace p2plb::lb
