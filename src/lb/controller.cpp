#include "lb/controller.h"

#include "lb/protocol_round.h"

namespace p2plb::lb {

namespace {

RoundStats stats_of(const BalanceReport& report) {
  RoundStats stats;
  stats.heavy_before = report.before.heavy_count;
  stats.heavy_after = report.after.heavy_count;
  stats.transfers = report.transfers_applied;
  stats.moved_load = report.vsa.assigned_load();
  stats.unassigned = report.vsa.unassigned_heavy.size();
  stats.messages = report.aggregation.messages +
                   report.dissemination.messages + report.vsa.messages;
  stats.completion_time = report.completion_time;
  stats.phases = report.phases;
  return stats;
}

/// Shared loop: `run_round` produces one finished BalanceReport.
template <typename RunRound>
ControllerResult run_until_stable(const ControllerConfig& config,
                                  RunRound&& run_round) {
  P2PLB_REQUIRE(config.max_rounds >= 1);
  ControllerResult result;
  for (std::uint32_t round = 0; round < config.max_rounds; ++round) {
    const BalanceReport report = run_round();
    result.rounds.push_back(stats_of(report));
    if (report.after.heavy_count <= config.target_heavy_count) {
      result.converged = true;
      break;
    }
    if (report.transfers_applied == 0) break;  // stagnation
  }
  return result;
}

}  // namespace

ControllerResult balance_until_stable(chord::Ring& ring,
                                      const ControllerConfig& config,
                                      Rng& rng,
                                      std::span<const chord::Key> node_keys) {
  return run_until_stable(config, [&] {
    return run_balance_round(ring, config.balancer, rng, node_keys);
  });
}

ControllerResult balance_until_stable(sim::Network& net, chord::Ring& ring,
                                      const ControllerConfig& config,
                                      Rng& rng,
                                      std::span<const chord::Key> node_keys,
                                      obs::Sampler* sampler) {
  return run_until_stable(config, [&] {
    if (sampler != nullptr) sampler->ensure_started(net.engine());
    ProtocolRound round(net, ring, {config.balancer, WireModel{}}, rng,
                        node_keys);
    round.start();
    net.engine().run();
    P2PLB_ASSERT_MSG(round.done(), "timed round did not drain");
    return round.report();
  });
}

}  // namespace p2plb::lb
