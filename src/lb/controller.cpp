#include "lb/controller.h"

namespace p2plb::lb {

ControllerResult balance_until_stable(chord::Ring& ring,
                                      const ControllerConfig& config,
                                      Rng& rng,
                                      std::span<const chord::Key> node_keys) {
  P2PLB_REQUIRE(config.max_rounds >= 1);
  ControllerResult result;
  for (std::uint32_t round = 0; round < config.max_rounds; ++round) {
    const BalanceReport report =
        run_balance_round(ring, config.balancer, rng, node_keys);
    RoundStats stats;
    stats.heavy_before = report.before.heavy_count;
    stats.heavy_after = report.after.heavy_count;
    stats.transfers = report.transfers_applied;
    stats.moved_load = report.vsa.assigned_load();
    stats.unassigned = report.vsa.unassigned_heavy.size();
    stats.messages = report.aggregation.messages +
                     report.dissemination.messages + report.vsa.messages;
    result.rounds.push_back(stats);
    if (report.after.heavy_count <= config.target_heavy_count) {
      result.converged = true;
      break;
    }
    if (report.transfers_applied == 0) break;  // stagnation
  }
  return result;
}

}  // namespace p2plb::lb
