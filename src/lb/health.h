// Derived system-health gauges for time-series sampling.
//
// The metrics registry accumulates what the protocols *did* (messages,
// transfers, phase timings); a HealthProbe computes what the system *is*
// at one instant: how unbalanced, how heavy, how stale.  Each reading is
// a pure function of the ring (plus the optionally attached continuous
// aggregator and maintenance tree), so sampling never perturbs the
// simulation -- the schedule-invariance property the observability tests
// pin.
//
// All load gauges are in *unit load*: node i's load divided by its
// capacity-proportional fair share (L / C) * C_i.  1.0 means exactly
// fair, 1.5 means 50% over; the paper's epsilon threshold (a node is
// heavy above (1 + epsilon) x share) reads directly off the same scale.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "chord/ring.h"
#include "ktree/protocol.h"
#include "lb/continuous.h"
#include "obs/timeseries.h"
#include "obs/window.h"

namespace p2plb::lb {

/// What the probe measures and how it names the result.
struct HealthProbeConfig {
  /// Heaviness threshold: node i is heavy iff load > (1 + epsilon) x
  /// fair share (matches classify_node).
  double epsilon = 0.1;
  /// Metric-name prefix; readings are emitted as `<prefix>.<gauge>`.
  std::string prefix = "health";
};

/// Point-in-time health gauges over a ring (and optional attachments).
class HealthProbe {
 public:
  /// `ring` must outlive the probe.
  explicit HealthProbe(const chord::Ring& ring, HealthProbeConfig config = {});

  /// Also report the continuous aggregator's root accuracy and staleness
  /// (`clbi_root_error`, `clbi_staleness`).  Must outlive the probe.
  void attach_continuous_lbi(const ContinuousLbi* clbi) noexcept {
    clbi_ = clbi;
  }
  /// Also report the maintenance tree's instance count and height
  /// (`ktree_instances`, `ktree_depth`).  Must outlive the probe.
  void attach_tree(const ktree::MaintenanceProtocol* tree) noexcept {
    tree_ = tree;
  }

  /// All readings at simulated time `now`, as (metric key, value) pairs
  /// in a fixed order.  Always emitted: nodes, heavy_fraction,
  /// mean/max/p99 unit load, imbalance (max unit load / mean unit load),
  /// gini_unit_load, and vs_per_node{q=p50|p99|max}.  Attachments add
  /// their gauges (see the attach_* docs).
  [[nodiscard]] std::vector<std::pair<std::string, double>> measure(
      double now) const;

  /// Append measure(t) to `sink` -- the obs::Sampler probe shape.
  void sample_into(double t, obs::TimeSeriesSink& sink) const;

  /// Publish into the online metrics plane: registers
  /// `<prefix>.{heavy_fraction,imbalance,mean_unit_load,max_unit_load}`
  /// gauge series plus a per-node `<prefix>.unit_load` SoA column
  /// (folded into a histogram each bucket), and adds a boundary probe
  /// that samples them into every closing bucket -- the signals the
  /// alert rules read.  Both the probe and `windows` must outlive each
  /// other's use; call once per aggregator.
  void register_windows(obs::WindowedAggregator& windows) const;

  [[nodiscard]] const HealthProbeConfig& config() const noexcept {
    return config_;
  }

 private:
  const chord::Ring& ring_;
  HealthProbeConfig config_;
  const ContinuousLbi* clbi_ = nullptr;
  const ktree::MaintenanceProtocol* tree_ = nullptr;
};

}  // namespace p2plb::lb
