// Figure 4 reproduction: unit load (load per unit of capacity) of every
// Chord node before (a) and after (b) one load-balancing round, Gaussian
// load distribution, 4096 nodes x 5 virtual servers, K = 2.
//
// Paper claims reproduced here:
//   * before balancing roughly 75% of the nodes are heavy;
//   * after balancing every heavy node has become light
//     (the unit-load scatter collapses to at/below the fair line).
//
// The paper's figure is a scatter plot; this binary prints the
// percentile profile of the unit-load distribution before/after (the
// information content of the scatter) plus the heavy/light/neutral
// counts.  --csv --scatter emits the raw per-node points for plotting.
#include <iostream>

#include "bench_util.h"
#include "common/stats.h"
#include "lb/balancer.h"

namespace {

using namespace p2plb;

std::vector<double> unit_loads(const chord::Ring& ring) {
  std::vector<double> out;
  for (const chord::NodeIndex i : ring.live_nodes())
    out.push_back(ring.node_load(i) / ring.node(i).capacity);
  return out;
}

void print_profile(const std::string& label, const std::vector<double>& ul,
                   double fair, bool csv) {
  const Summary s = summarize(ul);
  Table t({"phase", "min", "p25", "median", "p75", "p95", "p99", "max",
           "mean", "fair(L/C)"});
  t.add_row({label, Table::num(s.min), Table::num(s.p25),
             Table::num(s.median), Table::num(s.p75), Table::num(s.p95),
             Table::num(s.p99), Table::num(s.max), Table::num(s.mean),
             Table::num(fair)});
  bench::emit(t, csv);
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  bench::add_common_flags(cli);
  cli.add_flag("scatter", "emit per-node unit-load points", "false");
  if (!cli.parse(argc, argv)) return 0;
  const bool csv = cli.get_bool("csv");
  const auto params = bench::params_from_cli(cli);

  Rng rng(params.seed);
  auto ring = bench::build_loaded_ring(params, rng);
  const double fair = ring.total_load() / ring.total_capacity();

  print_heading(std::cout, "Figure 4(a): unit load before load balancing");
  const auto before_ul = unit_loads(ring);
  print_profile("before", before_ul, fair, csv);

  lb::BalancerConfig config;  // K = 2, proximity-ignorant, eps = 0.05
  Rng brng(params.seed + 1);
  const auto report = lb::run_balance_round(ring, config, brng);

  print_heading(std::cout, "Figure 4(b): unit load after load balancing");
  const auto after_ul = unit_loads(ring);
  print_profile("after", after_ul, fair, csv);

  print_heading(std::cout, "node classification (paper: ~75% heavy before;"
                           " all heavy become light after)");
  Table c({"phase", "heavy", "light", "neutral", "heavy %"});
  c.add_row({"before", std::to_string(report.before.heavy_count),
             std::to_string(report.before.light_count),
             std::to_string(report.before.neutral_count),
             Table::num(100.0 * report.before.heavy_fraction(), 1)});
  c.add_row({"after", std::to_string(report.after.heavy_count),
             std::to_string(report.after.light_count),
             std::to_string(report.after.neutral_count),
             Table::num(100.0 * report.after.heavy_fraction(), 1)});
  bench::emit(c, csv);

  print_heading(std::cout, "round summary");
  Table s({"metric", "value"});
  s.add_row({"virtual servers moved",
             std::to_string(report.transfers_applied)});
  s.add_row({"moved load", Table::num(report.vsa.assigned_load(), 1)});
  s.add_row({"moved load / total load",
             Table::num(report.vsa.assigned_load() / ring.total_load(), 4)});
  s.add_row({"VSA rounds (tree sweeps)", std::to_string(report.vsa.rounds)});
  s.add_row({"unassigned shed candidates",
             std::to_string(report.vsa.unassigned_heavy.size())});
  bench::emit(s, csv);

  if (cli.get_bool("scatter")) {
    print_heading(std::cout, "per-node scatter (node, before, after)");
    Table sc({"node", "unit_load_before", "unit_load_after"});
    for (std::size_t i = 0; i < before_ul.size(); ++i)
      sc.add_row({std::to_string(i), Table::num(before_ul[i], 6),
                  Table::num(after_ul[i], 6)});
    bench::emit(sc, csv);
  }
  return 0;
}
