// Microbenchmarks for the library's hot kernels (google-benchmark):
// Hilbert encode/decode, Chord ring operations and lookups, K-nary tree
// construction, the VSA pairing loop, topology generation and Dijkstra.
#include <benchmark/benchmark.h>

#include "chord/ring.h"
#include "chord/router.h"
#include "common/rng.h"
#include "hilbert/hilbert.h"
#include "ktree/tree.h"
#include "lb/balancer.h"
#include "sim/engine.h"
#include "topo/distance_oracle.h"
#include "topo/graph.h"
#include "topo/transit_stub.h"
#include "workload/capacity.h"
#include "workload/scenario.h"

namespace {

using namespace p2plb;

void BM_HilbertEncode(benchmark::State& state) {
  const hilbert::CurveSpec spec{
      static_cast<std::uint32_t>(state.range(0)),
      static_cast<std::uint32_t>(state.range(1))};
  Rng rng(1);
  std::vector<std::uint32_t> coords(spec.dims);
  for (auto& c : coords)
    c = static_cast<std::uint32_t>(rng.below(1ull << spec.bits));
  for (auto _ : state) {
    benchmark::DoNotOptimize(hilbert::encode(spec, coords));
  }
}
BENCHMARK(BM_HilbertEncode)
    ->Args({2, 16})
    ->Args({15, 2})
    ->Args({15, 8})
    ->Args({32, 4});

void BM_HilbertRoundTrip(benchmark::State& state) {
  const hilbert::CurveSpec spec{15, 2};
  hilbert::Index i = 12345;
  for (auto _ : state) {
    const auto coords = hilbert::decode(spec, i);
    benchmark::DoNotOptimize(hilbert::encode(spec, coords));
    i = (i + 7919) & ((hilbert::Index{1} << 30) - 1);
  }
}
BENCHMARK(BM_HilbertRoundTrip);

void BM_HilbertEncodeBatch(benchmark::State& state) {
  const hilbert::CurveSpec spec{15, 2};
  const auto count = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  std::vector<std::vector<std::uint32_t>> cols(
      spec.dims, std::vector<std::uint32_t>(count));
  for (auto& col : cols)
    for (auto& c : col)
      c = static_cast<std::uint32_t>(rng.below(1ull << spec.bits));
  hilbert::BatchEncoder encoder(spec);
  std::vector<hilbert::Index> out;
  for (auto _ : state) {
    encoder.encode(cols, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(count));
}
BENCHMARK(BM_HilbertEncodeBatch)->Arg(1024)->Arg(16384);

chord::Ring make_ring(std::size_t nodes, std::size_t servers) {
  Rng rng(2);
  return workload::build_ring(nodes, servers,
                              workload::CapacityProfile::gnutella_like(),
                              rng);
}

void BM_RingSuccessor(benchmark::State& state) {
  const auto ring = make_ring(static_cast<std::size_t>(state.range(0)), 5);
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ring.successor(static_cast<chord::Key>(rng() >> 32)).id);
  }
}
BENCHMARK(BM_RingSuccessor)->Arg(1024)->Arg(4096);

void BM_ChordLookup(benchmark::State& state) {
  const auto ring = make_ring(static_cast<std::size_t>(state.range(0)), 5);
  const chord::Router router(ring);
  const auto ids = ring.server_ids();
  Rng rng(4);
  std::uint64_t hops = 0, lookups = 0;
  for (auto _ : state) {
    const auto r = router.lookup(ids[rng.below(ids.size())],
                                 static_cast<chord::Key>(rng() >> 32));
    hops += r.hops;
    ++lookups;
    benchmark::DoNotOptimize(r.responsible);
  }
  state.counters["hops/lookup"] =
      static_cast<double>(hops) / static_cast<double>(lookups);
}
BENCHMARK(BM_ChordLookup)->Arg(256)->Arg(1024);

void BM_KTreeBuild(benchmark::State& state) {
  const auto ring = make_ring(static_cast<std::size_t>(state.range(0)), 5);
  for (auto _ : state) {
    const ktree::KTree tree(ring, 2);
    benchmark::DoNotOptimize(tree.size());
  }
}
BENCHMARK(BM_KTreeBuild)->Arg(256)->Arg(1024)->Arg(4096)
    ->Unit(benchmark::kMillisecond);

void BM_BalanceRound(benchmark::State& state) {
  Rng rng(5);
  auto base = workload::build_ring(
      static_cast<std::size_t>(state.range(0)), 5,
      workload::CapacityProfile::gnutella_like(), rng);
  const auto model = workload::scaled_load_model(
      base, workload::LoadDistribution::kGaussian, 0.25, 1.0);
  workload::assign_loads(base, model, rng);
  for (auto _ : state) {
    auto ring = base;
    Rng brng(6);
    lb::BalancerConfig config;
    const auto report = lb::run_balance_round(ring, config, brng);
    benchmark::DoNotOptimize(report.transfers_applied);
  }
}
BENCHMARK(BM_BalanceRound)->Arg(512)->Arg(2048)
    ->Unit(benchmark::kMillisecond);

void BM_VsaSweep(benchmark::State& state) {
  // The pairing sweep alone: entries are rebuilt outside the timed loop,
  // run_vsa (classification -> rendezvous -> leftover forwarding) inside.
  Rng rng(10);
  auto ring = workload::build_ring(
      static_cast<std::size_t>(state.range(0)), 5,
      workload::CapacityProfile::gnutella_like(), rng);
  const auto model = workload::scaled_load_model(
      ring, workload::LoadDistribution::kGaussian, 0.25, 1.0);
  workload::assign_loads(ring, model, rng);
  const ktree::KTree tree(ring, 2);
  Rng arng(11);
  const auto agg = lb::aggregate_lbi(tree, arng);
  const auto before = lb::classify_all(ring, agg.system, 0.0);
  const auto entries =
      lb::build_entries_ignorant(tree, before, agg.reporter_vs);
  lb::VsaParams params;
  params.min_load = agg.system.min_load;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lb::run_vsa(tree, entries, params));
  }
}
BENCHMARK(BM_VsaSweep)->Arg(1024)->Arg(4096)->Unit(benchmark::kMillisecond);

void BM_OracleLookup(benchmark::State& state) {
  // Cached source-row lookups (the per-send latency path): pre-warm every
  // source so the timed loop never runs a Dijkstra.
  Rng rng(12);
  const auto topo = topo::generate_transit_stub(
      topo::TransitStubParams::ts5k_small(), rng, "bench");
  topo::DistanceOracle oracle(topo.graph, topo.graph.vertex_count());
  const auto stubs = topo.stub_vertices();
  std::vector<std::pair<topo::Vertex, topo::Vertex>> pairs(4096);
  Rng pick(13);
  for (auto& [a, b] : pairs) {
    a = stubs[pick.below(stubs.size())];
    b = stubs[pick.below(stubs.size())];
  }
  for (const auto& [a, b] : pairs) benchmark::DoNotOptimize(oracle.distance(a, b));
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [a, b] = pairs[i];
    benchmark::DoNotOptimize(oracle.distance(a, b));
    i = (i + 1) & (pairs.size() - 1);
  }
}
BENCHMARK(BM_OracleLookup);

void BM_EngineThroughput(benchmark::State& state) {
  // Raw event-loop throughput, wheel vs binary heap: schedule a batch of
  // events at random small-latency offsets, drain, repeat.
  const auto kind = state.range(0) == 0 ? sim::QueueKind::kTimerWheel
                                        : sim::QueueKind::kBinaryHeap;
  constexpr int kBatch = 65536;
  std::uint64_t fired = 0;
  for (auto _ : state) {
    state.PauseTiming();
    sim::Engine engine(kind);
    Rng rng(14);
    for (int i = 0; i < kBatch; ++i)
      engine.schedule_at(static_cast<double>(rng.below(512)) + 0.25,
                         [&fired] { ++fired; });
    state.ResumeTiming();
    engine.run();
  }
  benchmark::DoNotOptimize(fired);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kBatch);
  state.SetLabel(kind == sim::QueueKind::kTimerWheel ? "wheel" : "heap");
}
BENCHMARK(BM_EngineThroughput)->Arg(0)->Arg(1);

void BM_TransitStubGenerate(benchmark::State& state) {
  for (auto _ : state) {
    Rng rng(7);
    const auto topo = topo::generate_transit_stub(
        topo::TransitStubParams::ts5k_large(), rng, "bench");
    benchmark::DoNotOptimize(topo.graph.vertex_count());
  }
}
BENCHMARK(BM_TransitStubGenerate)->Unit(benchmark::kMillisecond);

void BM_Dijkstra5k(benchmark::State& state) {
  Rng rng(8);
  const auto topo = topo::generate_transit_stub(
      topo::TransitStubParams::ts5k_large(), rng, "bench");
  Rng pick(9);
  for (auto _ : state) {
    const auto source =
        static_cast<topo::Vertex>(pick.below(topo.graph.vertex_count()));
    benchmark::DoNotOptimize(topo::shortest_paths(topo.graph, source));
  }
}
BENCHMARK(BM_Dijkstra5k)->Unit(benchmark::kMillisecond);

}  // namespace
