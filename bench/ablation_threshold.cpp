// Ablation: the rendezvous threshold (Section 3.4; paper example: 30).
//
// The threshold controls how low in the tree pairing may start: 0 lets
// every leaf pair immediately; a huge value defers everything to the
// root (equivalent to a centralized directory, i.e. Rao et al.'s
// many-to-many).  On a ts5k-large deployment with proximity-aware
// mapping this shows the locality / match-quality trade-off: low
// thresholds pair nearby records early (short transfers), the root-only
// extreme mixes everything.
#include <iostream>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace p2plb;
  Cli cli;
  bench::add_common_flags(cli);
  cli.add_flag("thresholds", "comma-separated rendezvous thresholds",
               "0,10,30,100,1000000");
  cli.add_flag("graphs", "topology graphs to aggregate", "2");
  if (!cli.parse(argc, argv)) return 0;
  const bool csv = cli.get_bool("csv");
  const auto params = bench::params_from_cli(cli);
  const auto graphs = static_cast<std::uint64_t>(cli.get_int("graphs"));
  const auto topo_params = topo::TransitStubParams::ts5k_large();

  print_heading(std::cout, "rendezvous threshold ablation, ts5k-large, "
                           "proximity-aware");
  Table t({"threshold", "% moved <= 2", "% moved <= 10", "mean distance",
           "heavy after", "unassigned"});
  for (const auto threshold : cli.get_int_list("thresholds")) {
    bench::DistanceProfile profile;
    std::size_t unassigned = 0;
    for (std::uint64_t g = 0; g < graphs; ++g) {
      Rng rng(params.seed + g * 1000);
      bench::Deployment d =
          bench::build_deployment(params, topo_params, "ts5k-large", rng);
      lb::ProximityConfig pconfig;
      Rng prng(params.seed + g * 1000 + 1);
      const auto keys =
          lb::build_proximity_map(d.ring, d.topology, pconfig, prng)
              .node_keys;
      lb::BalancerConfig config;
      config.mode = lb::BalanceMode::kProximityAware;
      config.rendezvous_threshold = static_cast<std::size_t>(threshold);
      Rng brng(params.seed + g * 1000 + 7);
      const auto report = lb::run_balance_round(d.ring, config, brng, keys);
      topo::DistanceOracle oracle(d.topology.graph, 32);
      profile.accumulate(d.ring, report.vsa.assignments, oracle);
      profile.after_heavy += report.after.heavy_count;
      unassigned += report.vsa.unassigned_heavy.size();
    }
    t.add_row({std::to_string(threshold),
               Table::num(100.0 * profile.moved_within(2.0), 1),
               Table::num(100.0 * profile.moved_within(10.0), 1),
               Table::num(profile.mean_distance(), 2),
               std::to_string(profile.after_heavy),
               std::to_string(unassigned)});
  }
  bench::emit(t, csv);
  return 0;
}
