// Section 3.5 / 1.2 feature: "Our approach allows VSA and VST to partly
// overlap for fast load balancing."
//
// Pairings made deep in the tree fire long before the bottom-up sweep
// reaches the root; an overlapping implementation starts each transfer
// the moment its rendezvous decides it, while a sequential one waits for
// the whole VSA phase.  This bench quantifies the saving: total time to
// finish all transfers, sequential vs overlapped, across transfer
// bandwidths (load units moved per simulated time unit; message latency
// is 1 unit per remote hop).
#include <algorithm>
#include <iostream>

#include "bench_util.h"
#include "ktree/protocol.h"
#include "ktree/tree.h"
#include "lb/classify.h"
#include "lb/lbi.h"
#include "lb/reporting.h"
#include "lb/vsa.h"

int main(int argc, char** argv) {
  using namespace p2plb;
  Cli cli;
  bench::add_common_flags(cli);
  cli.add_flag("bandwidths", "transfer bandwidths to sweep",
               "1,5,20,100");
  if (!cli.parse(argc, argv)) return 0;
  const bool csv = cli.get_bool("csv");
  const auto params = bench::params_from_cli(cli);

  Rng rng(params.seed);
  auto ring = bench::build_loaded_ring(params, rng);
  const ktree::KTree tree(ring, 2);
  Rng arng(params.seed + 1);
  const auto agg = lb::aggregate_lbi(tree, arng);
  const auto classification = lb::classify_all(ring, agg.system, 0.05);
  const auto entries =
      lb::build_entries_ignorant(tree, classification, agg.reporter_vs);

  const auto latency = ktree::unit_latency(ring);
  lb::VsaParams vsa_params;
  vsa_params.min_load = agg.system.min_load;
  vsa_params.latency = &latency;
  const auto vsa = lb::run_vsa(tree, entries, vsa_params);

  print_heading(std::cout, "VSA sweep timeline");
  Table info({"metric", "value"});
  info.add_row({"assignments", std::to_string(vsa.assignments.size())});
  info.add_row({"sweep completion time",
                Table::num(vsa.sweep_completion_time, 2)});
  double earliest = vsa.sweep_completion_time, latest = 0.0;
  for (const auto& a : vsa.assignments) {
    earliest = std::min(earliest, a.available_at);
    latest = std::max(latest, a.available_at);
  }
  info.add_row({"first pairing available at", Table::num(earliest, 2)});
  info.add_row({"last pairing available at", Table::num(latest, 2)});
  bench::emit(info, csv);

  print_heading(std::cout,
                "total completion time: sequential VST vs overlapped VST");
  Table t({"bandwidth (load/time)", "sequential", "overlapped", "saving %"});
  for (const auto bw : cli.get_int_list("bandwidths")) {
    const double bandwidth = static_cast<double>(bw);
    // Transfers run in parallel across node pairs; each takes load/bw.
    double max_duration = 0.0, overlapped_done = 0.0;
    for (const auto& a : vsa.assignments) {
      const double duration = a.load / bandwidth;
      max_duration = std::max(max_duration, duration);
      overlapped_done =
          std::max(overlapped_done, a.available_at + duration);
    }
    const double sequential = vsa.sweep_completion_time + max_duration;
    const double overlapped = std::max(overlapped_done, 0.0);
    t.add_row({std::to_string(bw), Table::num(sequential, 2),
               Table::num(overlapped, 2),
               Table::num(100.0 * (1.0 - overlapped / sequential), 1)});
  }
  bench::emit(t, csv);
  std::cout << "\n(Overlapping VST with VSA hides the sweep latency behind"
               " the transfers decided early, as Section 3.5 describes.)\n";
  return 0;
}
