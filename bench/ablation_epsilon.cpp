// Ablation: the epsilon knob (Section 3.3) -- "a parameter for a
// trade-off between the amount of load moved and the quality of balance
// achieved.  Ideally epsilon is 0."
//
// Sweeps epsilon and reports, per value: heavy nodes before/after one
// round, unassignable shed candidates, total moved load, and the
// post-round balance quality (max and p99 of load/target).  The table
// shows the trade-off the paper describes -- and why exactly-0 leaves a
// conservation residue (see lb/balancer.h).
#include <iostream>

#include "bench_util.h"
#include "common/stats.h"
#include "lb/balancer.h"

int main(int argc, char** argv) {
  using namespace p2plb;
  Cli cli;
  bench::add_common_flags(cli);
  cli.add_flag("epsilons", "comma-separated epsilon values",
               "0,0.02,0.05,0.1,0.2,0.4");
  if (!cli.parse(argc, argv)) return 0;
  const bool csv = cli.get_bool("csv");
  const auto params = bench::params_from_cli(cli);

  print_heading(std::cout,
                "epsilon ablation: moved load vs balance quality");
  Table t({"epsilon", "heavy before", "heavy after", "unassigned",
           "moved load", "moved/total %", "max load/target",
           "p99 load/target"});
  for (const double eps : cli.get_double_list("epsilons")) {
    Rng rng(params.seed);
    auto ring = bench::build_loaded_ring(params, rng);
    lb::BalancerConfig config;
    config.epsilon = eps;
    Rng brng(params.seed + 1);
    const auto report = lb::run_balance_round(ring, config, brng);
    // Balance quality: load over the *fair* (eps = 0) target.
    const double fair = ring.total_load() / ring.total_capacity();
    std::vector<double> ratios;
    for (const chord::NodeIndex i : ring.live_nodes())
      ratios.push_back(ring.node_load(i) / (fair * ring.node(i).capacity));
    const Summary s = summarize(ratios);
    t.add_row({Table::num(eps, 2), std::to_string(report.before.heavy_count),
               std::to_string(report.after.heavy_count),
               std::to_string(report.vsa.unassigned_heavy.size()),
               Table::num(report.vsa.assigned_load(), 0),
               Table::num(100.0 * report.vsa.assigned_load() /
                              ring.total_load(),
                          1),
               Table::num(s.max, 3), Table::num(s.p99, 3)});
  }
  bench::emit(t, csv);
  return 0;
}
