// Figure 6 reproduction: node load by capacity class before/after load
// balancing under the *Pareto* load model (shape alpha = 1.5, infinite
// variance).
//
// Paper claim: the alignment of load with capacity holds under the
// heavy-tailed distribution as well.  With alpha = 1.5 individual
// virtual servers can be enormous; candidates larger than every light
// node's spare stay unassigned (reported below), which is why the paper
// pairs this figure with the same qualitative, not exact, claim.
#include <iostream>
#include <map>

#include "bench_util.h"
#include "common/stats.h"
#include "lb/balancer.h"

namespace {

using namespace p2plb;

void print_by_capacity(const std::string& heading, const chord::Ring& ring,
                       bool csv) {
  std::map<double, RunningStats> classes;
  for (const chord::NodeIndex i : ring.live_nodes())
    classes[ring.node(i).capacity].add(ring.node_load(i));
  const double fair = ring.total_load() / ring.total_capacity();
  print_heading(std::cout, heading);
  Table t({"capacity", "nodes", "mean load", "min", "max", "fair target",
           "mean/target"});
  for (const auto& [capacity, stats] : classes) {
    const double target = fair * capacity;
    t.add_row({Table::num(capacity, 0), std::to_string(stats.count()),
               Table::num(stats.mean(), 1), Table::num(stats.min(), 1),
               Table::num(stats.max(), 1), Table::num(target, 1),
               Table::num(stats.mean() / target, 3)});
  }
  bench::emit(t, csv);
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  bench::add_common_flags(cli);
  cli.add_flag("alpha", "Pareto shape parameter", "1.5");
  if (!cli.parse(argc, argv)) return 0;
  const bool csv = cli.get_bool("csv");
  auto params = bench::params_from_cli(cli);
  params.distribution = workload::LoadDistribution::kPareto;
  params.pareto_alpha = cli.get_double("alpha");

  Rng rng(params.seed);
  auto ring = bench::build_loaded_ring(params, rng);

  print_by_capacity(
      "Figure 6 (before): load by capacity class, Pareto(alpha=1.5)", ring,
      csv);

  lb::BalancerConfig config;
  Rng brng(params.seed + 1);
  const auto report = lb::run_balance_round(ring, config, brng);

  print_by_capacity(
      "Figure 6 (after): load by capacity class, Pareto(alpha=1.5)", ring,
      csv);

  print_heading(std::cout, "balance outcome (heavy tail)");
  Table s({"heavy before", "heavy after", "moved load",
           "unassigned candidates", "largest unassigned load"});
  double largest = 0.0;
  for (const auto& u : report.vsa.unassigned_heavy)
    largest = std::max(largest, u.load);
  s.add_row({std::to_string(report.before.heavy_count),
             std::to_string(report.after.heavy_count),
             Table::num(report.vsa.assigned_load(), 1),
             std::to_string(report.vsa.unassigned_heavy.size()),
             Table::num(largest, 1)});
  bench::emit(s, csv);
  return 0;
}
