// Protocol-level timing (Sections 3.1-3.2 claims, measured in simulated
// time rather than round counts):
//
//   * LBI aggregation and dissemination completion time over the K-nary
//     tree with unit remote-message latency (parent-child edges between
//     KT nodes on the same physical node are free) -- the paper's
//     "bound in O(log_K N) time";
//   * soft-state self-repair: time for the maintenance protocol to
//     reconverge after crashing 10% of the nodes, in units of the
//     periodic check interval -- the paper's "completely reconstructed
//     in O(log_K N) time in a top-down fashion";
//   * one full event-driven balancing round (lb::ProtocolRound) on a
//     transit-stub topology with shortest-path latencies: per-phase
//     message/byte/timing breakdown and end-to-end completion time.
#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <string_view>

#include "bench_util.h"
#include "ktree/protocol.h"
#include "ktree/tree.h"
#include "lb/protocol_round.h"
#include "obs/binary_trace.h"
#include "obs/format.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "obs/window.h"
#include "sim/engine.h"
#include "sim/network.h"

namespace {

using namespace p2plb;

/// One end-to-end timed round's measurements (simulated and wall-clock).
struct TimedRoundResult {
  std::size_t nodes = 0;
  std::string engine;
  /// Observability config of this row: "none" (plain timed round),
  /// "null" (no tracer, the overhead baseline), "binary"
  /// (p2plb-btrace-1 streaming sink), "jsonl" (JSONL streaming sink),
  /// "profile" (host-time profiler attached, no tracer -- report-only in
  /// the delta gate) or "windows" (WindowedAggregator fed from the send
  /// path, no tracer).
  std::string sink = "none";
  double wall_seconds = 0.0;
  std::uint64_t events = 0;
  double events_per_sec = 0.0;
  std::uint64_t messages = 0;
  double completion_time = 0.0;
  std::size_t transfers_applied = 0;
  std::uint64_t trace_bytes = 0;  ///< on-disk trace size (sink rows)
};

/// Build the deployment and run one event-driven balancing round over
/// ts5k-small latencies, timing the wall clock around the event loop.
/// `obs_sink` != "none" attaches a local tracer streaming to a
/// temporary file (removed afterwards) so the row measures tracing
/// overhead; "null" runs tracer-free as the overhead baseline and
/// "profile" attaches a local host-time profiler instead of a tracer.
/// A non-null `profiler` is attached to the engine and network so the
/// caller can export the round's profile.
TimedRoundResult run_timed_round(std::size_t nodes, std::size_t servers,
                                 std::uint64_t seed, sim::QueueKind kind,
                                 obs::Tracer* tracer,
                                 const std::string& metrics_path,
                                 lb::BalanceReport* report_out,
                                 double* mean_latency_out,
                                 const std::string& obs_sink = "none",
                                 obs::Profiler* profiler = nullptr) {
  TimedRoundResult r;
  r.nodes = nodes;
  r.engine = kind == sim::QueueKind::kTimerWheel ? "wheel" : "heap";
  r.sink = obs_sink;
  bench::ExperimentParams params;
  params.nodes = nodes;
  params.servers_per_node = servers;
  params.seed = seed;
  Rng round_rng(seed + 17);
  bench::Deployment d = bench::build_deployment(
      params, topo::TransitStubParams::ts5k_small(), "ts5k-small", round_rng);
  // Distinct sources are bounded by the topology's vertex count, so the
  // row cache never needs more entries than that even at N = 1M.
  topo::DistanceOracle oracle(
      d.topology.graph,
      std::min<std::size_t>(std::max<std::size_t>(nodes, 64),
                            d.topology.graph.vertex_count()));
  sim::Engine engine(kind);
  sim::Network net(engine, oracle.latency());
  if (tracer != nullptr) net.attach_tracer(tracer);
  obs::Tracer obs_tracer;
  std::optional<obs::BinaryTraceSink> binary_sink;
  std::optional<obs::JsonlTraceSink> jsonl_sink;
  std::string obs_tmp;
  if (obs_sink == "binary") {
    obs_tmp = "obs_overhead_tmp.btrace";
    obs_tracer.set_sink(&binary_sink.emplace(obs_tmp));
    net.attach_tracer(&obs_tracer);
  } else if (obs_sink == "jsonl") {
    obs_tmp = "obs_overhead_tmp.jsonl";
    obs_tracer.set_sink(&jsonl_sink.emplace(obs_tmp));
    net.attach_tracer(&obs_tracer);
  }
  std::optional<obs::Profiler> own_profiler;
  if (obs_sink == "profile") profiler = &own_profiler.emplace();
  std::optional<obs::WindowedAggregator> windows;
  if (obs_sink == "windows") {
    // The online metrics plane on the hot path: every send records into
    // two counter series.  Bucket width 5 closes ~10 buckets per round.
    windows.emplace(obs::WindowConfig{5.0, 64});
    net.attach_windows(&*windows);
  }
  if (profiler != nullptr) {
    engine.attach_profiler(profiler);
    net.attach_profiler(profiler);
  }
  lb::ProtocolRound round(net, d.ring, {}, round_rng);
  const auto t0 = std::chrono::steady_clock::now();
  round.start();
  engine.run();
  if (obs_tracer.sink() != nullptr) obs_tracer.sink()->flush();
  const auto t1 = std::chrono::steady_clock::now();
  if (!obs_tmp.empty()) {
    std::ifstream sz(obs_tmp, std::ios::binary | std::ios::ate);
    if (sz.good()) r.trace_bytes = static_cast<std::uint64_t>(sz.tellg());
    sz.close();
    std::remove(obs_tmp.c_str());
  }
  const lb::BalanceReport& report = round.report();
  r.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  r.events = engine.events_executed();
  r.events_per_sec =
      r.wall_seconds > 0.0 ? static_cast<double>(r.events) / r.wall_seconds
                           : 0.0;
  r.messages = net.totals().messages;
  r.completion_time = report.completion_time;
  r.transfers_applied = report.transfers_applied;
  if (!metrics_path.empty()) {
    obs::write_metrics_file(net.metrics(), metrics_path);
    std::cerr << "metrics written to " << metrics_path << "\n";
  }
  if (report_out != nullptr) *report_out = report;
  if (mean_latency_out != nullptr)
    *mean_latency_out = net.totals().mean_latency();
  return r;
}

/// Write the timed-round results as the machine-readable bench JSON the
/// delta gate (tools/bench_delta.py) consumes.
void write_bench_json(const std::string& path,
                      const std::vector<TimedRoundResult>& rounds) {
  std::ofstream out(path);
  P2PLB_REQUIRE_MSG(out.good(), "cannot open bench JSON output file");
  out << "{\n  \"schema\": \"p2plb-bench-1\",\n  \"timed_rounds\": [\n";
  for (std::size_t i = 0; i < rounds.size(); ++i) {
    const TimedRoundResult& r = rounds[i];
    out << "    {\"nodes\": " << r.nodes << ", \"engine\": \"" << r.engine
        << "\", \"sink\": \"" << r.sink
        << "\", \"wall_seconds\": " << r.wall_seconds
        << ", \"events\": " << r.events
        << ", \"events_per_sec\": " << r.events_per_sec
        << ", \"messages\": " << r.messages
        << ", \"completion_time\": " << r.completion_time
        << ", \"transfers_applied\": " << r.transfers_applied
        << ", \"trace_bytes\": " << r.trace_bytes << "}"
        << (i + 1 < rounds.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cerr << "bench JSON written to " << path << "\n";
}

/// Binary-search the reconvergence instant to one check period.
sim::Time measure_recovery(sim::Engine& engine,
                           ktree::MaintenanceProtocol& protocol,
                           sim::Time interval, sim::Time budget) {
  const sim::Time start = engine.now();
  while (engine.now() - start < budget) {
    engine.run_until(engine.now() + interval);
    if (protocol.converged()) return engine.now() - start;
  }
  return -1.0;  // did not converge within budget (reported as such)
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  cli.add_flag("sizes", "comma-separated node counts", "128,512,2048");
  cli.add_flag("degrees", "comma-separated K values", "2,8");
  cli.add_flag("servers", "virtual servers per node", "5");
  cli.add_flag("seed", "root RNG seed", "1");
  cli.add_flag("crash-fraction", "fraction of nodes to crash", "0.1");
  cli.add_flag("timed-nodes",
               "ring size for the end-to-end timed balancing round", "512");
  cli.add_flag("timed-sizes",
               "comma-separated ring sizes for timed rounds (overrides "
               "--timed-nodes)",
               "");
  cli.add_flag("obs-sizes",
               "comma-separated ring sizes for the observability-overhead "
               "sweep (one timed round per sink: null tracer, binary, "
               "jsonl, host-time profiler, windowed aggregator); given "
               "alone it replaces the default timed round",
               "");
  cli.add_flag("engine", "event queue for timed rounds: wheel or heap",
               "wheel");
  cli.add_flag("bench-json",
               "write timed-round measurements to this JSON file", "");
  cli.add_flag("trace", p2plb::obs::kTraceFlagHelp, "");
  cli.add_flag("metrics", p2plb::obs::kMetricsFlagHelp, "");
  cli.add_flag("profile",
               std::string(p2plb::obs::kProfileFlagHelp) +
                   "; captures the first timed round",
               "");
  cli.add_flag("csv", "emit CSV instead of aligned tables", "false");
  if (!cli.parse(argc, argv)) return 0;
  const bool csv = cli.get_bool("csv");
  const auto servers = static_cast<std::size_t>(cli.get_int("servers"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const double crash_fraction = cli.get_double("crash-fraction");

  print_heading(std::cout,
                "simulated sweep latency and self-repair time vs N");
  Table t({"N", "K", "aggregate time", "disseminate time", "remote msgs",
           "local hops", "repair time (intervals)", "repair msgs"});
  for (const auto n : cli.get_int_list("sizes")) {
    for (const auto k : cli.get_int_list("degrees")) {
      const auto degree = static_cast<std::uint32_t>(k);
      // --- sweep latency over the converged tree -----------------------
      Rng rng(seed);
      chord::Ring ring;
      for (std::int64_t i = 0; i < n; ++i) {
        const auto node = ring.add_node(1.0);
        for (std::size_t v = 0; v < servers; ++v)
          (void)ring.add_random_virtual_server(node, rng);
      }
      const ktree::KTree tree(ring, degree);
      sim::Engine up_engine, down_engine;
      const auto up = ktree::simulate_aggregation(
          up_engine, tree, ktree::unit_latency(ring));
      const auto down = ktree::simulate_dissemination(
          down_engine, tree, ktree::unit_latency(ring));

      // --- self-repair after a correlated crash ------------------------
      sim::Engine engine;
      constexpr sim::Time kInterval = 1.0;
      ktree::MaintenanceProtocol protocol(engine, ring, degree, kInterval,
                                          ktree::unit_latency(ring));
      protocol.start();
      engine.run_until(4.0 * tree.height() + 20.0);
      const std::uint64_t messages_before_crash = protocol.messages();
      Rng crash_rng(seed + 2);
      const auto crash_count = static_cast<std::size_t>(
          crash_fraction * static_cast<double>(n));
      for (std::size_t c = 0; c < crash_count; ++c) {
        const auto live = ring.live_nodes();
        protocol.crash_node(live[crash_rng.below(live.size())]);
      }
      const sim::Time repair = measure_recovery(
          engine, protocol, kInterval, 6.0 * tree.height() + 60.0);

      t.add_row({std::to_string(n), std::to_string(k),
                 Table::num(up.completion_time, 1),
                 Table::num(down.completion_time, 1),
                 std::to_string(up.messages),
                 std::to_string(up.local_hops),
                 repair < 0 ? std::string("timeout") : Table::num(repair, 0),
                 std::to_string(protocol.messages() -
                                messages_before_crash)});
    }
  }
  bench::emit(t, csv);
  std::cout << "\n(All time columns must grow logarithmically with N and "
               "shrink as K grows.)\n";

  // --- end-to-end balancing rounds on a physical topology --------------
  // The whole four-phase protocol as events over ts5k-small shortest-path
  // latencies: where the simulated time of one round actually goes, and
  // how fast the engine chews through it (wall clock, events/sec).
  const std::string engine_name = cli.get_string("engine");
  P2PLB_REQUIRE_MSG(engine_name == "wheel" || engine_name == "heap",
                    "--engine must be wheel or heap");
  const sim::QueueKind kind = engine_name == "wheel"
                                  ? sim::QueueKind::kTimerWheel
                                  : sim::QueueKind::kBinaryHeap;
  std::vector<std::size_t> timed_sizes;
  for (const auto n : cli.get_int_list("timed-sizes"))
    timed_sizes.push_back(static_cast<std::size_t>(n));
  std::vector<std::size_t> obs_sizes;
  for (const auto n : cli.get_int_list("obs-sizes"))
    obs_sizes.push_back(static_cast<std::size_t>(n));
  if (timed_sizes.empty() && obs_sizes.empty())
    timed_sizes.push_back(static_cast<std::size_t>(cli.get_int("timed-nodes")));

  obs::Tracer tracer;
  const std::string trace_path = cli.get_string("trace");
  const std::string metrics_path = cli.get_string("metrics");
  const std::string profile_path = cli.get_string("profile");
  std::optional<obs::Profiler> profiler;
  if (!profile_path.empty()) profiler.emplace();
  std::vector<TimedRoundResult> results;
  for (std::size_t i = 0; i < timed_sizes.size(); ++i) {
    // Trace, metrics and profile capture the first size only; the rest
    // are timing sweeps.
    const bool capture = i == 0;
    lb::BalanceReport report;
    double mean_latency = 0.0;
    results.push_back(run_timed_round(
        timed_sizes[i], servers, seed, kind,
        capture && !trace_path.empty() ? &tracer : nullptr,
        capture ? metrics_path : std::string(), &report, &mean_latency,
        "none", capture && profiler ? &*profiler : nullptr));
    const TimedRoundResult& r = results.back();
    if (capture && profiler) {
      // Sim-time axis for the crosstab: phase windows named after the
      // network tags so they join the matching frames.
      constexpr std::array<std::string_view, lb::kPhaseCount> kPhaseTags = {
          lb::kTagAggregation, lb::kTagDissemination, lb::kTagVsa,
          lb::kTagTransfer};
      double round_end = report.phases[0].start;
      for (std::size_t p = 0; p < lb::kPhaseCount; ++p) {
        const lb::PhaseMetrics& m = report.phases[p];
        profiler->note_span(kPhaseTags[p], m.start, m.end);
        round_end = std::max(round_end, m.end);
      }
      profiler->note_span("round", report.phases[0].start, round_end);
    }

    print_heading(std::cout,
                  "one event-driven balancing round, ts5k-small, N = " +
                      std::to_string(r.nodes) + " (" + r.engine +
                      " engine)");
    Table phases({"phase", "messages", "bytes", "start", "end", "duration"});
    for (std::size_t p = 0; p < lb::kPhaseCount; ++p) {
      const lb::PhaseMetrics& m = report.phases[p];
      phases.add_row({std::to_string(p + 1) + " " +
                          lb::phase_name(static_cast<lb::Phase>(p)),
                      m.messages, Table::num(m.bytes, 0),
                      Table::num(m.start, 1), Table::num(m.end, 1),
                      Table::num(m.duration(), 1)});
    }
    bench::emit(phases, csv);
    std::cout << "\nround completion time: "
              << Table::num(report.completion_time, 1)
              << " latency units  (heavy " << report.before.heavy_count
              << " -> " << report.after.heavy_count << ", "
              << report.transfers_applied << " transfers, mean hop latency "
              << Table::num(mean_latency, 2) << ")\n"
              << "wall clock: " << Table::num(r.wall_seconds, 3) << " s for "
              << r.events << " events ("
              << Table::num(r.events_per_sec / 1e6, 2) << " M events/s)\n"
              << "(phase 4 starts before phase 3 ends: transfers overlap "
                 "the sweep)\n";
  }
  if (!trace_path.empty()) {
    obs::write_trace_file(tracer, trace_path);
    std::cerr << "trace written to " << trace_path << " ("
              << tracer.event_count() << " events)\n";
  }
  if (profiler) {
    profiler->write_profile_file(profile_path);
    std::cerr << "host-time profile written to " << profile_path << "\n";
  }

  // --- observability overhead -------------------------------------------
  // The same timed round, five ways: no tracer at all (the baseline),
  // the streaming binary sink, the streaming JSONL sink, the host-time
  // profiler, the windowed-metrics aggregator.  The wall-clock deltas
  // are the cost of each instrument; the byte columns show the on-disk
  // ratio between the trace formats.
  if (!obs_sizes.empty()) {
    print_heading(std::cout,
                  "observability overhead (one timed round per sink, " +
                      engine_name + " engine)");
    Table ot({"N", "sink", "wall s", "events", "M events/s", "trace MB",
              "overhead %"});
    for (const std::size_t n : obs_sizes) {
      double base_wall = 0.0;
      for (const std::string sink :
           {"null", "binary", "jsonl", "profile", "windows"}) {
        results.push_back(run_timed_round(n, servers, seed, kind, nullptr,
                                          "", nullptr, nullptr, sink));
        const TimedRoundResult& r = results.back();
        if (sink == "null") base_wall = r.wall_seconds;
        const double overhead =
            base_wall > 0.0
                ? 100.0 * (r.wall_seconds - base_wall) / base_wall
                : 0.0;
        ot.add_row({std::to_string(n), sink, Table::num(r.wall_seconds, 3),
                    std::to_string(r.events),
                    Table::num(r.events_per_sec / 1e6, 2),
                    Table::num(static_cast<double>(r.trace_bytes) / 1e6, 2),
                    sink == "null" ? std::string("-")
                                   : Table::num(overhead, 1)});
      }
    }
    bench::emit(ot, csv);
  }

  const std::string bench_json = cli.get_string("bench-json");
  if (!bench_json.empty()) write_bench_json(bench_json, results);
  return 0;
}
