// Protocol-level timing (Sections 3.1-3.2 claims, measured in simulated
// time rather than round counts):
//
//   * LBI aggregation and dissemination completion time over the K-nary
//     tree with unit remote-message latency (parent-child edges between
//     KT nodes on the same physical node are free) -- the paper's
//     "bound in O(log_K N) time";
//   * soft-state self-repair: time for the maintenance protocol to
//     reconverge after crashing 10% of the nodes, in units of the
//     periodic check interval -- the paper's "completely reconstructed
//     in O(log_K N) time in a top-down fashion";
//   * one full event-driven balancing round (lb::ProtocolRound) on a
//     transit-stub topology with shortest-path latencies: per-phase
//     message/byte/timing breakdown and end-to-end completion time.
#include <iostream>

#include "bench_util.h"
#include "ktree/protocol.h"
#include "ktree/tree.h"
#include "lb/protocol_round.h"
#include "obs/format.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/engine.h"
#include "sim/network.h"

namespace {

using namespace p2plb;

/// Binary-search the reconvergence instant to one check period.
sim::Time measure_recovery(sim::Engine& engine,
                           ktree::MaintenanceProtocol& protocol,
                           sim::Time interval, sim::Time budget) {
  const sim::Time start = engine.now();
  while (engine.now() - start < budget) {
    engine.run_until(engine.now() + interval);
    if (protocol.converged()) return engine.now() - start;
  }
  return -1.0;  // did not converge within budget (reported as such)
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  cli.add_flag("sizes", "comma-separated node counts", "128,512,2048");
  cli.add_flag("degrees", "comma-separated K values", "2,8");
  cli.add_flag("servers", "virtual servers per node", "5");
  cli.add_flag("seed", "root RNG seed", "1");
  cli.add_flag("crash-fraction", "fraction of nodes to crash", "0.1");
  cli.add_flag("timed-nodes",
               "ring size for the end-to-end timed balancing round", "512");
  cli.add_flag("trace", p2plb::obs::kTraceFlagHelp, "");
  cli.add_flag("metrics", p2plb::obs::kMetricsFlagHelp, "");
  cli.add_flag("csv", "emit CSV instead of aligned tables", "false");
  if (!cli.parse(argc, argv)) return 0;
  const bool csv = cli.get_bool("csv");
  const auto servers = static_cast<std::size_t>(cli.get_int("servers"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const double crash_fraction = cli.get_double("crash-fraction");

  print_heading(std::cout,
                "simulated sweep latency and self-repair time vs N");
  Table t({"N", "K", "aggregate time", "disseminate time", "remote msgs",
           "local hops", "repair time (intervals)", "repair msgs"});
  for (const auto n : cli.get_int_list("sizes")) {
    for (const auto k : cli.get_int_list("degrees")) {
      const auto degree = static_cast<std::uint32_t>(k);
      // --- sweep latency over the converged tree -----------------------
      Rng rng(seed);
      chord::Ring ring;
      for (std::int64_t i = 0; i < n; ++i) {
        const auto node = ring.add_node(1.0);
        for (std::size_t v = 0; v < servers; ++v)
          (void)ring.add_random_virtual_server(node, rng);
      }
      const ktree::KTree tree(ring, degree);
      sim::Engine up_engine, down_engine;
      const auto up = ktree::simulate_aggregation(
          up_engine, tree, ktree::unit_latency(ring));
      const auto down = ktree::simulate_dissemination(
          down_engine, tree, ktree::unit_latency(ring));

      // --- self-repair after a correlated crash ------------------------
      sim::Engine engine;
      constexpr sim::Time kInterval = 1.0;
      ktree::MaintenanceProtocol protocol(engine, ring, degree, kInterval,
                                          ktree::unit_latency(ring));
      protocol.start();
      engine.run_until(4.0 * tree.height() + 20.0);
      const std::uint64_t messages_before_crash = protocol.messages();
      Rng crash_rng(seed + 2);
      const auto crash_count = static_cast<std::size_t>(
          crash_fraction * static_cast<double>(n));
      for (std::size_t c = 0; c < crash_count; ++c) {
        const auto live = ring.live_nodes();
        protocol.crash_node(live[crash_rng.below(live.size())]);
      }
      const sim::Time repair = measure_recovery(
          engine, protocol, kInterval, 6.0 * tree.height() + 60.0);

      t.add_row({std::to_string(n), std::to_string(k),
                 Table::num(up.completion_time, 1),
                 Table::num(down.completion_time, 1),
                 std::to_string(up.messages),
                 std::to_string(up.local_hops),
                 repair < 0 ? std::string("timeout") : Table::num(repair, 0),
                 std::to_string(protocol.messages() -
                                messages_before_crash)});
    }
  }
  bench::emit(t, csv);
  std::cout << "\n(All time columns must grow logarithmically with N and "
               "shrink as K grows.)\n";

  // --- end-to-end balancing round on a physical topology ---------------
  // The whole four-phase protocol as events over ts5k-small shortest-path
  // latencies: where the simulated time of one round actually goes.
  const auto timed_nodes =
      static_cast<std::size_t>(cli.get_int("timed-nodes"));
  bench::ExperimentParams params;
  params.nodes = timed_nodes;
  params.servers_per_node = servers;
  params.seed = seed;
  Rng round_rng(seed + 17);
  bench::Deployment d = bench::build_deployment(
      params, topo::TransitStubParams::ts5k_small(), "ts5k-small",
      round_rng);
  topo::DistanceOracle oracle(d.topology.graph,
                              std::max<std::size_t>(timed_nodes, 64));
  sim::Engine engine;
  sim::Network net(engine, topo::oracle_latency(oracle));
  obs::Tracer tracer;
  const std::string trace_path = cli.get_string("trace");
  const std::string metrics_path = cli.get_string("metrics");
  if (!trace_path.empty()) net.attach_tracer(&tracer);
  lb::ProtocolRound round(net, d.ring, {}, round_rng);
  round.start();
  engine.run();
  const lb::BalanceReport& report = round.report();
  if (!trace_path.empty()) {
    obs::write_trace_file(tracer, trace_path);
    std::cerr << "trace written to " << trace_path << " ("
              << tracer.event_count() << " events)\n";
  }
  if (!metrics_path.empty()) {
    obs::write_metrics_file(net.metrics(), metrics_path);
    std::cerr << "metrics written to " << metrics_path << "\n";
  }

  print_heading(std::cout,
                "one event-driven balancing round, ts5k-small, N = " +
                    std::to_string(timed_nodes));
  Table phases({"phase", "messages", "bytes", "start", "end", "duration"});
  for (std::size_t p = 0; p < lb::kPhaseCount; ++p) {
    const lb::PhaseMetrics& m = report.phases[p];
    phases.add_row({std::to_string(p + 1) + " " +
                        lb::phase_name(static_cast<lb::Phase>(p)),
                    m.messages, Table::num(m.bytes, 0),
                    Table::num(m.start, 1), Table::num(m.end, 1),
                    Table::num(m.duration(), 1)});
  }
  bench::emit(phases, csv);
  std::cout << "\nround completion time: "
            << Table::num(report.completion_time, 1)
            << " latency units  (heavy " << report.before.heavy_count
            << " -> " << report.after.heavy_count << ", "
            << report.transfers_applied << " transfers, mean hop latency "
            << Table::num(net.totals().mean_latency(), 2) << ")\n"
            << "(phase 4 starts before phase 3 ends: transfers overlap "
               "the sweep)\n";
  return 0;
}
