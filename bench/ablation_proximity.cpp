// Ablation: the proximity mapping's knobs (Sections 4.1-4.2).
//
//   * m, the number of landmarks ("a sufficient number of landmark nodes
//     need to be used to reduce the probability of false clustering");
//   * n, the grid resolution in bits per dimension ("a smaller n
//     increases the likelihood that two physically close nodes have the
//     same Hilbert number");
//   * landmark placement (core routers vs overlay members);
//   * vector centering (this implementation's refinement -- removes the
//     per-node distance-to-gateway offset that is common to every
//     coordinate);
//   * key-local rendezvous (pair identical Hilbert numbers first).
//
// Each row reports the locality achieved on ts5k-large.
#include <iostream>

#include "bench_util.h"

namespace {

using namespace p2plb;

struct Variant {
  std::string name;
  lb::ProximityConfig proximity;
  bool key_local = true;
};

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  bench::add_common_flags(cli);
  cli.add_flag("graphs", "topology graphs to aggregate", "2");
  if (!cli.parse(argc, argv)) return 0;
  const bool csv = cli.get_bool("csv");
  const auto params = bench::params_from_cli(cli);
  const auto graphs = static_cast<std::uint64_t>(cli.get_int("graphs"));
  const auto topo_params = topo::TransitStubParams::ts5k_large();

  std::vector<Variant> variants;
  {
    Variant v;
    v.name = "default (m=15, b=2, stub landmarks, centered, key-local)";
    variants.push_back(v);
  }
  for (const std::size_t m : {4u, 8u}) {
    Variant v;
    v.name = "m=" + std::to_string(m) + " landmarks";
    v.proximity.landmark_count = m;
    variants.push_back(v);
  }
  for (const std::uint32_t bits : {1u, 4u}) {
    Variant v;
    v.name = "b=" + std::to_string(bits) + " bits/dim";
    v.proximity.bits_per_dimension = bits;
    variants.push_back(v);
  }
  {
    Variant v;
    v.name = "transit-core landmarks";
    v.proximity.strategy = topo::LandmarkStrategy::kTransitSpread;
    variants.push_back(v);
  }
  {
    Variant v;
    v.name = "no vector centering";
    v.proximity.center_vectors = false;
    variants.push_back(v);
  }
  {
    Variant v;
    v.name = "no key-local rendezvous";
    v.key_local = false;
    variants.push_back(v);
  }

  print_heading(std::cout, "proximity-mapping ablation, ts5k-large, "
                           "proximity-aware mode");
  Table t({"variant", "% moved <= 2", "% moved <= 10", "mean distance",
           "heavy after"});
  for (const Variant& variant : variants) {
    bench::DistanceProfile profile;
    for (std::uint64_t g = 0; g < graphs; ++g) {
      Rng rng(params.seed + g * 1000);
      bench::Deployment d =
          bench::build_deployment(params, topo_params, "ts5k-large", rng);
      Rng prng(params.seed + g * 1000 + 1);
      const auto keys = lb::build_proximity_map(d.ring, d.topology,
                                                variant.proximity, prng)
                            .node_keys;
      lb::BalancerConfig config;
      config.mode = lb::BalanceMode::kProximityAware;
      config.key_local_rendezvous = variant.key_local;
      Rng brng(params.seed + g * 1000 + 7);
      const auto report = lb::run_balance_round(d.ring, config, brng, keys);
      topo::DistanceOracle oracle(d.topology.graph, 32);
      profile.accumulate(d.ring, report.vsa.assignments, oracle);
      profile.after_heavy += report.after.heavy_count;
    }
    t.add_row({variant.name,
               Table::num(100.0 * profile.moved_within(2.0), 1),
               Table::num(100.0 * profile.moved_within(10.0), 1),
               Table::num(profile.mean_distance(), 2),
               std::to_string(profile.after_heavy)});
  }
  bench::emit(t, csv);
  return 0;
}
