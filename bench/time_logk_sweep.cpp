// Section 5.2 timing claim: "VSA completes quickly in O(log_K N) time"
// for K = 2 and K = 8, and LBI aggregation/dissemination are bounded by
// O(log_K N) rounds.
//
// This binary sweeps the system size N and prints, per (N, K):
//   * the K-nary tree's height and *effective* height (host changes on
//     the longest root-leaf path -- the number of remote hops a sweep
//     pays; same-host parent/child edges are free),
//   * LBI aggregation and VSA sweep round counts,
//   * message counts,
// together with log_K(V) for reference (V = number of virtual servers).
// The growth of every column must be logarithmic in N and shallower for
// K = 8 than K = 2.
#include <cmath>
#include <iostream>

#include "bench_util.h"
#include "ktree/tree.h"
#include "lb/balancer.h"

int main(int argc, char** argv) {
  using namespace p2plb;
  Cli cli;
  cli.add_flag("sizes", "comma-separated node counts",
               "256,512,1024,2048,4096,8192");
  cli.add_flag("degrees", "comma-separated K values", "2,8");
  cli.add_flag("servers", "virtual servers per node", "5");
  cli.add_flag("seed", "root RNG seed", "1");
  cli.add_flag("csv", "emit CSV instead of aligned tables", "false");
  if (!cli.parse(argc, argv)) return 0;
  const bool csv = cli.get_bool("csv");
  const auto servers = static_cast<std::size_t>(cli.get_int("servers"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  print_heading(std::cout,
                "O(log_K N) sweep: tree depth and sweep rounds vs N");
  Table t({"N", "K", "V", "log_K V", "tree size", "height", "eff height",
           "LBI rounds", "VSA rounds", "LBI msgs", "VSA msgs"});
  for (const auto n : cli.get_int_list("sizes")) {
    bench::ExperimentParams params;
    params.nodes = static_cast<std::size_t>(n);
    params.servers_per_node = servers;
    params.seed = seed;
    Rng rng(params.seed);
    auto ring = bench::build_loaded_ring(params, rng);
    for (const auto k : cli.get_int_list("degrees")) {
      lb::BalancerConfig config;
      config.tree_degree = static_cast<std::uint32_t>(k);
      config.apply_transfers = false;  // measurement only
      auto ring_copy = ring;
      Rng brng(params.seed + 3);
      const auto report = lb::run_balance_round(ring_copy, config, brng);
      const ktree::KTree tree(ring, config.tree_degree);
      const double v = static_cast<double>(ring.virtual_server_count());
      const double logk = std::log(v) / std::log(static_cast<double>(k));
      t.add_row({std::to_string(n), std::to_string(k),
                 std::to_string(ring.virtual_server_count()),
                 Table::num(logk, 1), std::to_string(tree.size()),
                 std::to_string(tree.height()),
                 std::to_string(tree.effective_height()),
                 std::to_string(report.aggregation.rounds),
                 std::to_string(report.vsa.rounds),
                 std::to_string(report.aggregation.messages),
                 std::to_string(report.vsa.messages)});
    }
  }
  bench::emit(t, csv);
  std::cout << "\n(Heights and rounds must grow ~logarithmically with N and"
               " shrink with K;\n the paper observed similar balancing"
               " results for K = 2 and K = 8.)\n";
  return 0;
}
