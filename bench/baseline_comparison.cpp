// Baseline comparison (Sections 1.1 and 6): the paper's proximity-aware
// scheme against
//   * its own proximity-ignorant variant,
//   * a centralized many-to-many directory (Rao et al.'s strongest
//     scheme == our sweep with an infinite rendezvous threshold),
//   * one-to-one random probing (Rao et al.'s simplest scheme),
//   * CFS-style virtual-server shedding (deleting servers; load is
//     absorbed by ring successors, risking thrashing).
//
// Reported per scheme: residual heavy nodes, moved load, mean physical
// transfer distance, message/probe counts, and thrash events.  CFS
// shedding "moves" load by arc absorption, so its distance column shows
// the successor distance; its thrash column is the paper's criticism
// made quantitative.
#include <iostream>

#include "bench_util.h"
#include "lb/baselines.h"

namespace {

using namespace p2plb;

struct Row {
  std::string scheme;
  std::size_t heavy_before = 0;
  std::size_t heavy_after = 0;
  double moved = 0.0;
  double mean_distance = 0.0;
  std::uint64_t messages = 0;
  std::size_t thrash = 0;
};

double mean_distance_of(const chord::Ring& ring,
                        const std::vector<lb::Assignment>& assignments,
                        topo::DistanceOracle& oracle) {
  const auto costs = lb::transfer_costs(ring, assignments, oracle);
  double moved = 0.0, weighted = 0.0;
  for (const auto& t : costs) {
    moved += t.assignment.load;
    weighted += t.assignment.load * t.distance;
  }
  return moved == 0.0 ? 0.0 : weighted / moved;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  bench::add_common_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  const bool csv = cli.get_bool("csv");
  const auto params = bench::params_from_cli(cli);
  const auto topo_params = topo::TransitStubParams::ts5k_large();

  Rng rng(params.seed);
  const bench::Deployment base =
      bench::build_deployment(params, topo_params, "ts5k-large", rng);

  std::vector<Row> rows;

  // --- the paper's scheme, proximity-aware ------------------------------
  {
    bench::Deployment d = base;
    lb::ProximityConfig pconfig;
    Rng prng(params.seed + 1);
    const auto keys =
        lb::build_proximity_map(d.ring, d.topology, pconfig, prng).node_keys;
    lb::BalancerConfig config;
    config.mode = lb::BalanceMode::kProximityAware;
    Rng brng(params.seed + 7);
    const auto report = lb::run_balance_round(d.ring, config, brng, keys);
    topo::DistanceOracle oracle(d.topology.graph, 32);
    rows.push_back({"proximity-aware K-nary tree (this paper)",
                    report.before.heavy_count, report.after.heavy_count,
                    report.vsa.assigned_load(),
                    mean_distance_of(d.ring, report.vsa.assignments, oracle),
                    report.aggregation.messages + report.vsa.messages, 0});
  }

  // --- proximity-ignorant variant ---------------------------------------
  {
    bench::Deployment d = base;
    lb::BalancerConfig config;
    Rng brng(params.seed + 7);
    const auto report = lb::run_balance_round(d.ring, config, brng);
    topo::DistanceOracle oracle(d.topology.graph, 32);
    rows.push_back({"proximity-ignorant K-nary tree",
                    report.before.heavy_count, report.after.heavy_count,
                    report.vsa.assigned_load(),
                    mean_distance_of(d.ring, report.vsa.assignments, oracle),
                    report.aggregation.messages + report.vsa.messages, 0});
  }

  // --- many-to-many central directory (threshold = infinity) -------------
  {
    bench::Deployment d = base;
    lb::BalancerConfig config;
    config.rendezvous_threshold = static_cast<std::size_t>(-1);
    Rng brng(params.seed + 7);
    const auto report = lb::run_balance_round(d.ring, config, brng);
    topo::DistanceOracle oracle(d.topology.graph, 32);
    rows.push_back({"many-to-many directory (Rao et al.)",
                    report.before.heavy_count, report.after.heavy_count,
                    report.vsa.assigned_load(),
                    mean_distance_of(d.ring, report.vsa.assignments, oracle),
                    report.aggregation.messages + report.vsa.messages, 0});
  }

  // --- one-to-many directories ----------------------------------------------
  {
    bench::Deployment d = base;
    Rng brng(params.seed + 7);
    const std::size_t heavy_before =
        lb::classify_all(d.ring, lb::ground_truth_lbi(d.ring), 0.05)
            .heavy_count;
    auto result = lb::run_one_to_many(d.ring, 0.05, brng, 16);
    topo::DistanceOracle oracle(d.topology.graph, 32);
    rows.push_back({"one-to-many directories (Rao et al.)", heavy_before,
                    result.residual_heavy, result.load_moved,
                    mean_distance_of(d.ring, result.assignments, oracle),
                    result.messages, 0});
  }

  // --- one-to-one random probing ------------------------------------------
  {
    bench::Deployment d = base;
    Rng brng(params.seed + 7);
    const std::size_t heavy_before =
        lb::classify_all(d.ring, lb::ground_truth_lbi(d.ring), 0.05)
            .heavy_count;
    auto result = lb::run_one_to_one(d.ring, 0.05, brng);
    topo::DistanceOracle oracle(d.topology.graph, 32);
    rows.push_back({"one-to-one random probing (Rao et al.)", heavy_before,
                    result.residual_heavy, result.load_moved,
                    mean_distance_of(d.ring, result.assignments, oracle),
                    result.probes, 0});
  }

  // --- CFS-style shedding ---------------------------------------------------
  {
    bench::Deployment d = base;
    const std::size_t heavy_before =
        lb::classify_all(d.ring, lb::ground_truth_lbi(d.ring), 0.05)
            .heavy_count;
    const auto result = lb::run_cfs_shedding(d.ring, 0.05);
    rows.push_back({"CFS-style shedding", heavy_before,
                    result.residual_heavy, result.load_moved, 0.0, 0,
                    result.thrash_events});
  }

  print_heading(std::cout, "baseline comparison, ts5k-large, 4096 nodes");
  Table t({"scheme", "heavy before", "heavy after", "moved load",
           "mean transfer distance", "messages/probes", "thrash events"});
  for (const Row& r : rows)
    t.add_row({r.scheme, std::to_string(r.heavy_before),
               std::to_string(r.heavy_after), Table::num(r.moved, 0),
               r.mean_distance == 0.0 && r.scheme.starts_with("CFS")
                   ? std::string("n/a (arc absorption)")
                   : Table::num(r.mean_distance, 2),
               std::to_string(r.messages), std::to_string(r.thrash)});
  bench::emit(t, csv);
  return 0;
}
