// Figure 5 reproduction: node load by capacity class before/after load
// balancing under the Gaussian load model.
//
// Paper claim: after balancing, "higher capacity nodes take more loads"
// -- the two skews (load distribution, node capacity) are aligned.  The
// paper shows per-capacity-class scatter plots; this binary prints the
// per-class load statistics, which must be strictly increasing in
// capacity after the round.
#include <iostream>
#include <map>

#include "bench_util.h"
#include "common/stats.h"
#include "lb/balancer.h"

namespace {

using namespace p2plb;

void print_by_capacity(const std::string& heading, const chord::Ring& ring,
                       bool csv) {
  std::map<double, RunningStats> classes;
  std::map<double, std::vector<double>> samples;
  for (const chord::NodeIndex i : ring.live_nodes()) {
    classes[ring.node(i).capacity].add(ring.node_load(i));
    samples[ring.node(i).capacity].push_back(ring.node_load(i));
  }
  const double fair = ring.total_load() / ring.total_capacity();
  print_heading(std::cout, heading);
  Table t({"capacity", "nodes", "mean load", "median", "min", "max",
           "fair target", "mean/target"});
  for (auto& [capacity, stats] : classes) {
    auto& sample = samples[capacity];
    std::sort(sample.begin(), sample.end());
    const double target = fair * capacity;
    t.add_row({Table::num(capacity, 0), std::to_string(stats.count()),
               Table::num(stats.mean(), 1),
               Table::num(percentile_sorted(sample, 0.5), 1),
               Table::num(stats.min(), 1), Table::num(stats.max(), 1),
               Table::num(target, 1),
               Table::num(stats.mean() / target, 3)});
  }
  bench::emit(t, csv);
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  bench::add_common_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  const bool csv = cli.get_bool("csv");
  const auto params = bench::params_from_cli(cli);

  Rng rng(params.seed);
  auto ring = bench::build_loaded_ring(params, rng);

  print_by_capacity(
      "Figure 5 (before): load by capacity class, Gaussian workload", ring,
      csv);

  lb::BalancerConfig config;
  Rng brng(params.seed + 1);
  const auto report = lb::run_balance_round(ring, config, brng);

  print_by_capacity(
      "Figure 5 (after): load by capacity class -- higher capacity must "
      "carry more load",
      ring, csv);

  print_heading(std::cout, "balance outcome");
  Table s({"heavy before", "heavy after", "moved load"});
  s.add_row({std::to_string(report.before.heavy_count),
             std::to_string(report.after.heavy_count),
             Table::num(report.vsa.assigned_load(), 1)});
  bench::emit(s, csv);
  return 0;
}
