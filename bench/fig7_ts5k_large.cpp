// Figure 7 reproduction: moved-load vs physical transfer distance on the
// "ts5k-large" transit-stub topology (few big stub domains), comparing
// the proximity-aware and proximity-ignorant schemes.
//
// Paper claims (shapes to reproduce):
//   * aware moves ~67% of the total moved load within 2 hops and ~86%
//     within 10 hops;
//   * ignorant moves only ~13% within 10 hops;
// where one intradomain edge costs 1 hop unit and one interdomain edge
// costs 3.
//
// (a) prints the moved-load distribution over distance buckets; (b) the
// CDF at the bucket edges.  Multiple topology graphs (the paper runs 10)
// are aggregated; --graphs controls the count.
#include <iostream>

#include "bench_util.h"
#include "common/histogram.h"

namespace {

using namespace p2plb;

void run_figure(const topo::TransitStubParams& topo_params,
                const std::string& topo_name, const Cli& cli) {
  const bool csv = cli.get_bool("csv");
  const auto params = bench::params_from_cli(cli);
  const auto graphs = static_cast<std::uint64_t>(cli.get_int("graphs"));

  lb::ProximityConfig proximity;
  proximity.landmark_count =
      static_cast<std::size_t>(cli.get_int("landmarks"));
  proximity.bits_per_dimension =
      static_cast<std::uint32_t>(cli.get_int("bits"));

  bench::DistanceProfile aware, ignorant;
  for (std::uint64_t g = 0; g < graphs; ++g) {
    Rng rng(params.seed + g * 1000);
    const bench::Deployment base =
        bench::build_deployment(params, topo_params, topo_name, rng);
    bench::run_mode_into_profile(base, lb::BalanceMode::kProximityAware,
                                 proximity, params.seed + g * 1000 + 7,
                                 aware);
    bench::run_mode_into_profile(base, lb::BalanceMode::kProximityIgnorant,
                                 proximity, params.seed + g * 1000 + 7,
                                 ignorant);
  }

  // Distance buckets matching the paper's x-axis granularity.
  const std::vector<double> edges{0, 2, 4, 6, 8, 10, 12, 14, 16, 20, 24,
                                  32};
  Histogram ha(edges), hi(edges);
  for (std::size_t i = 0; i < aware.distances.size(); ++i)
    ha.add(aware.distances[i], aware.loads[i]);
  for (std::size_t i = 0; i < ignorant.distances.size(); ++i)
    hi.add(ignorant.distances[i], ignorant.loads[i]);

  print_heading(std::cout, "(a) moved load distribution over distance, " +
                               topo_name + " (" + std::to_string(graphs) +
                               " graphs)");
  Table dist({"hops [lo,hi)", "aware % of moved load",
              "ignorant % of moved load"});
  const auto fa = ha.fractions();
  const auto fi = hi.fractions();
  for (std::size_t b = 0; b < ha.bin_count(); ++b)
    dist.add_row({"[" + Table::num(ha.bin_lo(b), 0) + "," +
                      Table::num(ha.bin_hi(b), 0) + ")",
                  Table::num(100.0 * fa[b], 1),
                  Table::num(100.0 * fi[b], 1)});
  dist.add_row({">= " + Table::num(edges.back(), 0),
                Table::num(100.0 * ha.overflow() / std::max(1.0, ha.total()), 1),
                Table::num(100.0 * hi.overflow() / std::max(1.0, hi.total()), 1)});
  bench::emit(dist, csv);

  print_heading(std::cout, "(b) CDF of moved load over distance");
  Table cdf({"hops <=", "aware CDF %", "ignorant CDF %"});
  for (const double x : {1.0, 2.0, 4.0, 6.0, 8.0, 10.0, 14.0, 20.0, 32.0})
    cdf.add_row({Table::num(x, 0),
                 Table::num(100.0 * aware.moved_within(x), 1),
                 Table::num(100.0 * ignorant.moved_within(x), 1)});
  bench::emit(cdf, csv);

  print_heading(std::cout, "headline comparison (paper: aware ~67% <= 2, "
                           "~86% <= 10; ignorant ~13% <= 10)");
  Table head({"scheme", "% moved <= 2 hops", "% moved <= 10 hops",
              "mean distance", "transfers", "heavy before", "heavy after"});
  head.add_row({"proximity-aware",
                Table::num(100.0 * aware.moved_within(2.0), 1),
                Table::num(100.0 * aware.moved_within(10.0), 1),
                Table::num(aware.mean_distance(), 2),
                std::to_string(aware.transfers),
                std::to_string(aware.before_heavy),
                std::to_string(aware.after_heavy)});
  head.add_row({"proximity-ignorant",
                Table::num(100.0 * ignorant.moved_within(2.0), 1),
                Table::num(100.0 * ignorant.moved_within(10.0), 1),
                Table::num(ignorant.mean_distance(), 2),
                std::to_string(ignorant.transfers),
                std::to_string(ignorant.before_heavy),
                std::to_string(ignorant.after_heavy)});
  bench::emit(head, csv);
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  bench::add_common_flags(cli);
  cli.add_flag("graphs", "number of topology graphs to aggregate (paper: 10)",
               "3");
  cli.add_flag("landmarks", "number of landmark nodes (paper: 15)", "15");
  cli.add_flag("bits", "Hilbert grid bits per dimension", "2");
  if (!cli.parse(argc, argv)) return 0;
  run_figure(p2plb::topo::TransitStubParams::ts5k_large(), "ts5k-large",
             cli);
  return 0;
}
