// Figure 8 reproduction: moved-load distribution over transfer distance
// on "ts5k-small" (many tiny stub domains -- nodes scattered across the
// whole Internet), proximity-aware vs proximity-ignorant.
//
// Paper claim: even with nodes scattered Internet-wide, the
// proximity-aware scheme still moves load markedly closer than the
// ignorant one (the gap is smaller than on ts5k-large but clearly
// present).
#include <iostream>

#include "bench_util.h"
#include "common/histogram.h"

namespace {

using namespace p2plb;

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  bench::add_common_flags(cli);
  cli.add_flag("graphs", "number of topology graphs to aggregate (paper: 10)",
               "3");
  cli.add_flag("landmarks", "number of landmark nodes (paper: 15)", "15");
  cli.add_flag("bits", "Hilbert grid bits per dimension", "2");
  if (!cli.parse(argc, argv)) return 0;
  const bool csv = cli.get_bool("csv");
  const auto params = bench::params_from_cli(cli);
  const auto graphs = static_cast<std::uint64_t>(cli.get_int("graphs"));

  lb::ProximityConfig proximity;
  proximity.landmark_count =
      static_cast<std::size_t>(cli.get_int("landmarks"));
  proximity.bits_per_dimension =
      static_cast<std::uint32_t>(cli.get_int("bits"));

  bench::DistanceProfile aware, ignorant;
  const auto topo_params = topo::TransitStubParams::ts5k_small();
  for (std::uint64_t g = 0; g < graphs; ++g) {
    Rng rng(params.seed + g * 1000);
    const bench::Deployment base =
        bench::build_deployment(params, topo_params, "ts5k-small", rng);
    bench::run_mode_into_profile(base, lb::BalanceMode::kProximityAware,
                                 proximity, params.seed + g * 1000 + 7,
                                 aware);
    bench::run_mode_into_profile(base, lb::BalanceMode::kProximityIgnorant,
                                 proximity, params.seed + g * 1000 + 7,
                                 ignorant);
  }

  const std::vector<double> edges{0, 2, 4, 6, 8, 10, 12, 14, 16, 20, 24,
                                  32};
  Histogram ha(edges), hi(edges);
  for (std::size_t i = 0; i < aware.distances.size(); ++i)
    ha.add(aware.distances[i], aware.loads[i]);
  for (std::size_t i = 0; i < ignorant.distances.size(); ++i)
    hi.add(ignorant.distances[i], ignorant.loads[i]);

  print_heading(std::cout,
                "Figure 8: moved load distribution over distance, "
                "ts5k-small (" + std::to_string(graphs) + " graphs)");
  Table dist({"hops [lo,hi)", "aware % of moved load",
              "ignorant % of moved load"});
  const auto fa = ha.fractions();
  const auto fi = hi.fractions();
  for (std::size_t b = 0; b < ha.bin_count(); ++b)
    dist.add_row({"[" + Table::num(ha.bin_lo(b), 0) + "," +
                      Table::num(ha.bin_hi(b), 0) + ")",
                  Table::num(100.0 * fa[b], 1),
                  Table::num(100.0 * fi[b], 1)});
  dist.add_row({">= " + Table::num(edges.back(), 0),
                Table::num(100.0 * ha.overflow() / std::max(1.0, ha.total()), 1),
                Table::num(100.0 * hi.overflow() / std::max(1.0, hi.total()), 1)});
  bench::emit(dist, csv);

  print_heading(std::cout, "summary (paper: aware still clearly beats "
                           "ignorant on scattered nodes)");
  Table head({"scheme", "% moved <= 4 hops", "% moved <= 10 hops",
              "mean distance", "heavy after"});
  head.add_row({"proximity-aware",
                Table::num(100.0 * aware.moved_within(4.0), 1),
                Table::num(100.0 * aware.moved_within(10.0), 1),
                Table::num(aware.mean_distance(), 2),
                std::to_string(aware.after_heavy)});
  head.add_row({"proximity-ignorant",
                Table::num(100.0 * ignorant.moved_within(4.0), 1),
                Table::num(100.0 * ignorant.moved_within(10.0), 1),
                Table::num(ignorant.mean_distance(), 2),
                std::to_string(ignorant.after_heavy)});
  bench::emit(head, csv);
  return 0;
}
