// Ablation: the K-nary tree degree.  The paper evaluates K = 2 and K = 8
// and reports "similar results"; this sweep quantifies that across a
// wider range: balance outcome, tree shape, sweep rounds and message
// counts per degree.
#include <iostream>

#include "bench_util.h"
#include "ktree/tree.h"
#include "lb/balancer.h"

int main(int argc, char** argv) {
  using namespace p2plb;
  Cli cli;
  bench::add_common_flags(cli);
  cli.add_flag("degrees", "comma-separated K values", "2,3,4,8,16,32");
  if (!cli.parse(argc, argv)) return 0;
  const bool csv = cli.get_bool("csv");
  const auto params = bench::params_from_cli(cli);

  Rng rng(params.seed);
  const auto base = bench::build_loaded_ring(params, rng);

  print_heading(std::cout, "tree degree ablation (paper: K=2 vs K=8 are "
                           "similar)");
  Table t({"K", "tree size", "height", "eff height", "heavy before",
           "heavy after", "moved load", "LBI msgs", "VSA msgs"});
  for (const auto k : cli.get_int_list("degrees")) {
    auto ring = base;
    lb::BalancerConfig config;
    config.tree_degree = static_cast<std::uint32_t>(k);
    Rng brng(params.seed + 1);
    const auto report = lb::run_balance_round(ring, config, brng);
    const ktree::KTree tree(ring, config.tree_degree);
    t.add_row({std::to_string(k), std::to_string(tree.size()),
               std::to_string(tree.height()),
               std::to_string(tree.effective_height()),
               std::to_string(report.before.heavy_count),
               std::to_string(report.after.heavy_count),
               Table::num(report.vsa.assigned_load(), 0),
               std::to_string(report.aggregation.messages),
               std::to_string(report.vsa.messages)});
  }
  bench::emit(t, csv);
  return 0;
}
