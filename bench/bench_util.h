// Shared experiment plumbing for the figure-reproduction binaries.
//
// Every figure binary follows the same recipe: build the paper's
// deployment (4096 Chord nodes x 5 virtual servers, Gnutella-like
// capacities, Gaussian or Pareto loads, optionally attached to a
// GT-ITM-style topology), run one or more balancing rounds, and print
// aligned tables (or CSV with --csv).  Centralizing the recipe keeps
// each figure binary small and the configurations consistent.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "common/cli.h"
#include "common/rng.h"
#include "common/table.h"
#include "lb/balancer.h"
#include "lb/proximity.h"
#include "lb/vst.h"
#include "topo/distance_oracle.h"
#include "topo/transit_stub.h"
#include "workload/capacity.h"
#include "workload/scenario.h"

namespace p2plb::bench {

/// The paper's standard scale (Section 5.2).
inline constexpr std::size_t kPaperNodes = 4096;
inline constexpr std::size_t kPaperServersPerNode = 5;

/// Standard experiment knobs shared by the figure binaries.
struct ExperimentParams {
  std::size_t nodes = kPaperNodes;
  std::size_t servers_per_node = kPaperServersPerNode;
  workload::LoadDistribution distribution =
      workload::LoadDistribution::kGaussian;
  double utilization = 0.25;
  double cv = 1.0;            ///< Gaussian per-VS coefficient of variation
  double pareto_alpha = 1.5;  ///< the paper's Pareto shape
  std::uint64_t seed = 1;
};

/// Register the flags every figure binary accepts.
inline void add_common_flags(Cli& cli) {
  cli.add_flag("nodes", "number of Chord nodes", "4096");
  cli.add_flag("servers", "virtual servers per node", "5");
  cli.add_flag("seed", "root RNG seed", "1");
  cli.add_flag("utilization", "mean total load / total capacity", "0.25");
  cli.add_flag("csv", "emit CSV instead of aligned tables", "false");
}

inline ExperimentParams params_from_cli(const Cli& cli) {
  ExperimentParams p;
  p.nodes = static_cast<std::size_t>(cli.get_int("nodes"));
  p.servers_per_node = static_cast<std::size_t>(cli.get_int("servers"));
  p.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  p.utilization = cli.get_double("utilization");
  return p;
}

/// Build a loaded, topology-free ring (Figures 4-6 do not need one).
inline chord::Ring build_loaded_ring(const ExperimentParams& p, Rng& rng) {
  auto ring = workload::build_ring(
      p.nodes, p.servers_per_node,
      workload::CapacityProfile::gnutella_like(), rng);
  const auto model = workload::scaled_load_model(
      ring, p.distribution, p.utilization, p.cv, p.pareto_alpha);
  workload::assign_loads(ring, model, rng);
  return ring;
}

/// A ring attached to a transit-stub topology (Figures 7-8).
struct Deployment {
  topo::TransitStubTopology topology;
  chord::Ring ring;
};

inline Deployment build_deployment(const ExperimentParams& p,
                                   const topo::TransitStubParams& topo_params,
                                   const std::string& topo_name, Rng& rng) {
  auto topology = topo::generate_transit_stub(topo_params, rng, topo_name);
  const auto stubs = topology.stub_vertices();
  std::vector<std::uint32_t> attachments(p.nodes);
  const auto picks =
      rng.sample_indices(stubs.size(), std::min(p.nodes, stubs.size()));
  for (std::size_t i = 0; i < p.nodes; ++i)
    attachments[i] = stubs[picks[i % picks.size()]];
  auto ring = workload::build_ring(
      p.nodes, p.servers_per_node,
      workload::CapacityProfile::gnutella_like(), rng, attachments);
  const auto model = workload::scaled_load_model(
      ring, p.distribution, p.utilization, p.cv, p.pareto_alpha);
  workload::assign_loads(ring, model, rng);
  return {std::move(topology), std::move(ring)};
}

/// Moved-load-by-distance accounting for one balancing run.
struct DistanceProfile {
  std::vector<double> distances;  ///< per transfer
  std::vector<double> loads;      ///< per transfer (the weights)
  double total_moved = 0.0;
  std::size_t transfers = 0;
  std::size_t before_heavy = 0;
  std::size_t after_heavy = 0;

  void accumulate(const chord::Ring& ring,
                  const std::vector<lb::Assignment>& assignments,
                  topo::DistanceOracle& oracle) {
    const auto costs = lb::transfer_costs(ring, assignments, oracle);
    for (const auto& t : costs) {
      distances.push_back(t.distance);
      loads.push_back(t.assignment.load);
      total_moved += t.assignment.load;
    }
    transfers += costs.size();
  }

  /// Fraction of moved load at distance <= x.
  [[nodiscard]] double moved_within(double x) const {
    double within = 0.0;
    for (std::size_t i = 0; i < distances.size(); ++i)
      if (distances[i] <= x) within += loads[i];
    return total_moved == 0.0 ? 0.0 : within / total_moved;
  }

  [[nodiscard]] double mean_distance() const {
    double weighted = 0.0;
    for (std::size_t i = 0; i < distances.size(); ++i)
      weighted += distances[i] * loads[i];
    return total_moved == 0.0 ? 0.0 : weighted / total_moved;
  }
};

/// Run one balancing round in the given mode over a fresh copy of the
/// deployment and accumulate its transfer profile.
inline void run_mode_into_profile(const Deployment& base,
                                  lb::BalanceMode mode,
                                  const lb::ProximityConfig& proximity,
                                  std::uint64_t seed,
                                  DistanceProfile& profile) {
  Deployment d = base;
  Rng rng(seed);
  lb::BalancerConfig config;
  config.mode = mode;
  std::vector<chord::Key> keys;
  if (mode == lb::BalanceMode::kProximityAware) {
    Rng prng(seed + 1);
    keys = lb::build_proximity_map(d.ring, d.topology, proximity, prng)
               .node_keys;
  }
  const auto report = lb::run_balance_round(d.ring, config, rng, keys);
  topo::DistanceOracle oracle(d.topology.graph, 32);
  profile.accumulate(d.ring, report.vsa.assignments, oracle);
  profile.before_heavy += report.before.heavy_count;
  profile.after_heavy += report.after.heavy_count;
}

/// Print a table either aligned or as CSV.
inline void emit(const Table& table, bool csv) {
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print_text(std::cout);
  }
}

}  // namespace p2plb::bench
